//! The IR interpreter.
//!
//! The VM executes instrumented `minic` programs against the simulated
//! low-fat address space, dispatching every check instruction through a
//! single [`san_api::Sanitizer`] backend (an EffectiveSan variant or one of
//! the paper's comparison tools, constructed from the `san-api` registry),
//! and counting every event needed by the paper's performance experiments
//! (instructions, loads/stores, allocations and the per-check counters
//! kept by the backend itself).

use std::collections::HashMap;
use std::sync::Arc;

use effective_runtime::{Bounds, RuntimeConfig};
use effective_types::{Type, TypeId};
use lowfat::{AllocKind, Ptr};
use minic::ast::{BinOp, UnOp};
use minic::ir::{Builtin, CastKind, Const, Function, Instr, Program};
use san_api::{SanStats, Sanitizer, SanitizerKind};
use serde::{Deserialize, Serialize};

use crate::profile::VmProfiler;
use crate::tier::{FastFunction, FastInstr, LoadKind, NO_INDEX};
use crate::value::Value;

/// Errors raised during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The entry function does not exist.
    UndefinedFunction(String),
    /// A call to a function with the wrong number of arguments.
    ArityMismatch(String),
    /// Integer division by zero.
    DivisionByZero,
    /// The instruction budget was exhausted (runaway loop protection).
    InstructionLimit,
    /// The call stack exceeded the maximum depth.
    StackOverflow,
    /// The program called `abort()`.
    Aborted,
    /// Execution stopped because the error reporter reached its
    /// abort-after-N limit.
    Halted,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::UndefinedFunction(n) => write!(f, "undefined function `{n}`"),
            VmError::ArityMismatch(n) => write!(f, "arity mismatch calling `{n}`"),
            VmError::DivisionByZero => write!(f, "division by zero"),
            VmError::InstructionLimit => write!(f, "instruction limit exhausted"),
            VmError::StackOverflow => write!(f, "call stack overflow"),
            VmError::Aborted => write!(f, "program aborted"),
            VmError::Halted => write!(f, "halted after reaching the error limit"),
        }
    }
}

impl std::error::Error for VmError {}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Which sanitizer the program was instrumented for (decides how check
    /// instructions are dispatched).
    pub sanitizer: SanitizerKind,
    /// EffectiveSan runtime configuration (reporting mode, quarantine).
    pub runtime: RuntimeConfig,
    /// Instruction budget (runaway-loop protection).
    pub max_instructions: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Seed for the `rand()` builtin.
    pub seed: u64,
    /// Promote a function to the fast tier once it has been called this
    /// many times (`u32::MAX` disables tiered execution entirely,
    /// including on-stack replacement).
    pub promote_after_calls: u32,
    /// Promote mid-execution (on-stack replacement) once a single slow
    /// activation has taken this many backward jumps (`u32::MAX` disables
    /// OSR only).  Catches hot loops inside functions called once.
    ///
    /// Both thresholds are clamped to at least 1: a threshold of 0 would
    /// otherwise promote before any profile exists.
    pub osr_after_backjumps: u32,
    /// Elide checks dominated by a covering check in the same straight-line
    /// run when translating to the fast tier (the paper's §5.3
    /// redundant-check elimination).  Also disabled by setting the
    /// `SAN_NO_HOIST` environment variable to a non-empty value other
    /// than `0`.
    pub hoist_checks: bool,
    /// Collect a per-check-site / per-function tier profile (see
    /// [`Vm::profile_report`]).  Off by default; profiling is
    /// observational only — results, statistics and diagnostics are
    /// bit-identical either way (the differential suite pins this).
    pub profile: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            sanitizer: SanitizerKind::EffectiveFull,
            runtime: RuntimeConfig::default(),
            max_instructions: 500_000_000,
            max_call_depth: 4096,
            seed: 0x5eed_0001,
            promote_after_calls: 2,
            osr_after_backjumps: 64,
            hoist_checks: true,
            profile: false,
        }
    }
}

/// `SAN_NO_HOIST` set to a non-empty value other than `0` disables the
/// fast-tier check-elision pass regardless of [`VmConfig::hoist_checks`]
/// (used by CI to run the differential suite both ways).
fn hoist_disabled_by_env() -> bool {
    std::env::var_os("SAN_NO_HOIST")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Execution event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Instructions executed (excluding check instructions).
    pub instructions: u64,
    /// Check instructions executed.
    pub check_instructions: u64,
    /// Memory loads performed.
    pub loads: u64,
    /// Memory stores performed.
    pub stores: u64,
    /// Function calls made.
    pub calls: u64,
    /// Allocations made (heap + stack + global).
    pub allocations: u64,
    /// Frees performed.
    pub frees: u64,
    /// Functions promoted to the fast tier (translation events).
    pub tier_promotions: u64,
    /// Calls dispatched to the fast tier.
    pub fast_calls: u64,
    /// Dominated checks whose backend call the fast tier skipped because
    /// the dominating check passed (§5.3 redundant-check elimination).
    /// Every elided site still ticks `check_instructions`, so only the
    /// backend's `bounds_checks`/`access_checks` counters shrink — by
    /// exactly this amount.
    pub checks_elided: u64,
}

/// The deterministic cost model used alongside wall-clock time for the
/// Figure 8/10 overhead experiments (see `EXPERIMENTS.md`): every event is
/// assigned an approximate cycle cost so relative overheads do not depend
/// on interpreter implementation details.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of an ordinary instruction.
    pub instruction: f64,
    /// Additional cost of a load or store.
    pub memory_access: f64,
    /// Cost of a `type_check` (layout hash table lookup).
    pub type_check: f64,
    /// Cost of a `cast_check`.
    pub cast_check: f64,
    /// Cost of a `bounds_get`.
    pub bounds_get: f64,
    /// Cost of a `bounds_check`.
    pub bounds_check: f64,
    /// Cost of a `bounds_narrow`.
    pub bounds_narrow: f64,
    /// Cost of a bound-table load on a bounds-register-file miss (the
    /// Intel-MPX model's `BNDLDX`, a two-level table walk).
    pub bounds_table_load: f64,
    /// Cost of a baseline per-access (shadow-memory) check.
    pub access_check: f64,
    /// Cost of an allocation.
    pub allocation: f64,
    /// Extra cost of binding type meta data to an allocation.
    pub typed_allocation_extra: f64,
    /// Cost of a free.
    pub free: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Approximate cycle costs on the paper's x86-64 target: a
        // `type_check` is an out-of-line call performing a layout-hash-table
        // lookup plus meta-data loads, bounds checks are short inline
        // compare/branch sequences, and binding type meta data makes
        // allocation noticeably more expensive.  The absolute values are
        // calibrated so the *relative* overheads of the EffectiveSan
        // variants on the synthetic workloads land in the neighbourhood of
        // Figure 8 (see EXPERIMENTS.md).
        CostModel {
            instruction: 1.0,
            memory_access: 1.0,
            type_check: 110.0,
            cast_check: 110.0,
            bounds_get: 16.0,
            bounds_check: 6.0,
            bounds_narrow: 3.0,
            bounds_table_load: 30.0,
            access_check: 6.0,
            allocation: 80.0,
            typed_allocation_extra: 60.0,
            free: 50.0,
        }
    }
}

impl CostModel {
    /// Estimated cost of an execution, combining VM event counts with the
    /// unified check counters of the active backend.
    pub fn cost(&self, exec: &ExecStats, checks: &SanStats) -> f64 {
        let mut c = 0.0;
        c += exec.instructions as f64 * self.instruction;
        c += (exec.loads + exec.stores) as f64 * self.memory_access;
        c += exec.allocations as f64 * self.allocation;
        c += exec.frees as f64 * self.free;
        c += checks.type_checks as f64 * self.type_check;
        c += checks.cast_checks as f64 * self.cast_check;
        c += checks.bounds_gets as f64 * self.bounds_get;
        c += checks.bounds_checks as f64 * self.bounds_check;
        c += checks.bounds_narrows as f64 * self.bounds_narrow;
        c += checks.bounds_table_loads as f64 * self.bounds_table_load;
        c += checks.access_checks as f64 * self.access_check;
        c += checks.typed_allocations as f64 * self.typed_allocation_extra;
        c
    }
}

/// A function-table entry: the slow-tier body (the semantic oracle), the
/// fast-tier body once promoted, and the hotness counter driving
/// promotion.
#[derive(Debug)]
struct FuncEntry {
    slow: Arc<Function>,
    fast: Option<Arc<FastFunction>>,
    calls: u32,
}

/// Why a function is being promoted to the fast tier (profiler/tracer
/// annotation only; the translation itself is identical).
#[derive(Clone, Copy, Debug)]
enum PromoteTrigger {
    /// The per-function call counter reached the promotion threshold.
    Calls(u32),
    /// A single slow activation reached the OSR backjump threshold.
    Backjumps(u32),
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    program: Arc<Program>,
    /// The sanitizer backend every check instruction and allocation event
    /// dispatches through — an EffectiveSan variant or a baseline tool,
    /// constructed from the `san-api` registry.  The backend also owns the
    /// simulated memory and the typed allocator, even for uninstrumented
    /// runs.
    backend: Box<dyn Sanitizer>,
    globals: HashMap<String, Ptr>,
    stats: ExecStats,
    output: Vec<String>,
    rng: u64,
    max_instructions: u64,
    max_call_depth: usize,
    /// Scratch stack for call arguments: callers push argument values and
    /// callees drain them into their frame slots, so no `Vec<Value>` is
    /// allocated per `Call` (frames nest, so a stack discipline suffices).
    arg_scratch: Vec<Value>,
    /// Function table in deterministic (sorted-name) order; the fast tier
    /// calls by index so the hot path never hashes a callee name.
    funcs: Vec<FuncEntry>,
    /// Name → function-table index.
    func_index: HashMap<String, u32>,
    /// Instrument-time check-type id → backend type id, built once at
    /// load time so check dispatch never hashes a structural type.
    check_type_map: Vec<TypeId>,
    promote_after_calls: u32,
    osr_after_backjumps: u32,
    /// Whether fast-tier translation runs the check-elision pass.
    hoist_checks: bool,
    /// Per-site check results, indexed by fast-tier site index (sized to
    /// the largest promoted function's site table).  An elided check reads
    /// its dominator's entry: `true` means the dominating check passed on
    /// this very execution of the run, so the dominated check must pass
    /// too.  Sound because a dominator and its dominated sites sit in one
    /// straight-line run with no intervening call — nothing can interleave
    /// between the write and the read, even under recursion.
    check_guards: Vec<bool>,
    /// Opt-in site/tier profiler ([`VmConfig::profile`]); `None` (the
    /// default) keeps the hot paths free of sampling.
    profiler: Option<Box<VmProfiler>>,
}

impl Vm {
    /// Create a VM for an (instrumented) program and allocate its globals.
    /// The backend is built from the `san-api` registry according to
    /// [`VmConfig::sanitizer`].
    pub fn new(program: Arc<Program>, config: VmConfig) -> Self {
        let backend = san_api::build(config.sanitizer, program.registry.clone(), config.runtime);
        Vm::with_backend(program, backend, config)
    }

    /// Create a VM over an explicit backend (e.g. one built by name via
    /// [`san_api::build_by_name`]); `config.sanitizer` is ignored.
    pub fn with_backend(
        program: Arc<Program>,
        mut backend: Box<dyn Sanitizer>,
        config: VmConfig,
    ) -> Self {
        // Pre-intern every type the program references so the check hot
        // path never pays first-touch meta-data construction (a no-op for
        // tools without type meta data).
        let referenced = program.referenced_types();
        backend.preload_types(&referenced.alloc, &referenced.checks);

        // Allocate and initialise globals.
        let mut globals = HashMap::new();
        for g in &program.globals {
            let elem = g.ty.strip_array().clone();
            let ptr = backend.on_alloc(g.size, &elem, AllocKind::Global);
            if let Some(init) = &g.init {
                backend.memory_mut().write(ptr, init);
            }
            globals.insert(g.name.clone(), ptr);
        }

        // Build the function table in deterministic (sorted-name) order
        // and intern every check-site static type into the backend's id
        // space — after this, neither tier hashes a type or a callee name
        // while executing.
        let mut names: Vec<&String> = program.functions.keys().collect();
        names.sort();
        let func_names: Vec<String> = names.iter().map(|n| n.to_string()).collect();
        let mut funcs = Vec::with_capacity(names.len());
        let mut func_index = HashMap::with_capacity(names.len());
        let mut check_type_map: Vec<TypeId> = Vec::new();
        for name in names {
            let func = program
                .functions
                .get(name)
                .expect("function exists")
                .clone();
            for instr in &func.body {
                if let Instr::TypeCheck { ty, ty_id, .. } | Instr::CastCheck { ty, ty_id, .. } =
                    instr
                {
                    let idx = ty_id.index();
                    if check_type_map.len() <= idx {
                        check_type_map.resize(idx + 1, TypeId::UNTYPED);
                    }
                    check_type_map[idx] = backend.intern_check_type(ty);
                }
            }
            func_index.insert(name.clone(), funcs.len() as u32);
            funcs.push(FuncEntry {
                slow: func,
                fast: None,
                calls: 0,
            });
        }

        Vm {
            program,
            backend,
            globals,
            stats: ExecStats::default(),
            output: Vec::new(),
            rng: config.seed.max(1),
            max_instructions: config.max_instructions,
            max_call_depth: config.max_call_depth,
            arg_scratch: Vec::with_capacity(64),
            funcs,
            func_index,
            check_type_map,
            // A threshold of 0 would promote before any profile exists;
            // clamp to 1 (`u32::MAX` still means disabled).
            promote_after_calls: config.promote_after_calls.max(1),
            osr_after_backjumps: config.osr_after_backjumps.max(1),
            hoist_checks: config.hoist_checks && !hoist_disabled_by_env(),
            check_guards: Vec::new(),
            profiler: config
                .profile
                .then(|| Box::new(VmProfiler::new(func_names))),
        }
    }

    /// Which sanitizer this VM dispatches checks to.
    pub fn sanitizer(&self) -> SanitizerKind {
        self.backend.kind()
    }

    /// The active sanitizer backend (stats, error reports, memory).
    pub fn backend(&self) -> &dyn Sanitizer {
        self.backend.as_ref()
    }

    /// Mutable access to the active sanitizer backend (e.g. to drain
    /// diagnostics via [`Sanitizer::finish`]).
    pub fn backend_mut(&mut self) -> &mut dyn Sanitizer {
        self.backend.as_mut()
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The collected site/tier profile, if [`VmConfig::profile`] was set.
    pub fn profile_report(&self) -> Option<obs::ProfileReport> {
        self.profiler.as_ref().map(|p| p.report())
    }

    /// Profiler hook: a check executed its backend call.
    #[inline]
    fn prof_check(&mut self, loc: &Arc<str>, passed: bool) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.check(loc, passed);
        }
    }

    /// Profiler hook: a dominated check was skipped under its guard.
    #[inline]
    fn prof_elide(&mut self, loc: &Arc<str>) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.elided(loc);
        }
    }

    /// Profiler hook: a dominated check ran in full (guard failed).
    #[inline]
    fn prof_fallback(&mut self, loc: &Arc<str>) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.fallback(loc);
        }
    }

    /// Record an on-stack replacement (profiler event + trace event).
    fn note_osr_entry(&mut self, func_idx: u32, backjumps: u32) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.osr_entry(func_idx, u64::from(backjumps));
        }
        let tracer = obs::san_tracer();
        if tracer.enabled() {
            tracer.event(
                "tier_osr_entry",
                &[
                    (
                        "func",
                        self.funcs[func_idx as usize].slow.name.as_str().into(),
                    ),
                    ("backjumps", backjumps.into()),
                ],
            );
        }
    }

    /// Text emitted by `print_*` builtins.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Peak resident memory of the simulated address space, in bytes
    /// (Figure 9 metric).
    pub fn peak_memory_bytes(&self) -> u64 {
        self.backend.memory().peak_bytes()
    }

    /// The address of a global variable, if defined.
    pub fn global(&self, name: &str) -> Option<Ptr> {
        self.globals.get(name).copied()
    }

    /// Run `entry(args…)` to completion.
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<Value, VmError> {
        self.arg_scratch.clear();
        self.arg_scratch.extend_from_slice(args);
        self.call(entry, 0, 0)
    }

    /// Call `name` with the arguments sitting at `arg_base..` on the
    /// scratch stack; consumes them (truncating back to `arg_base`) in
    /// every path.  Only name-based entry points (`run`, calls to
    /// functions absent at translation time) pay the name hash — calls
    /// between known functions go through [`Vm::call_indexed`].
    fn call(&mut self, name: &str, arg_base: usize, depth: usize) -> Result<Value, VmError> {
        if depth > self.max_call_depth {
            self.arg_scratch.truncate(arg_base);
            return Err(VmError::StackOverflow);
        }
        let Some(&idx) = self.func_index.get(name) else {
            self.arg_scratch.truncate(arg_base);
            return Err(VmError::UndefinedFunction(name.to_string()));
        };
        self.call_indexed(idx, arg_base, depth)
    }

    /// Call the function at table index `idx`, bumping its hotness
    /// counter and promoting it to the fast tier at the threshold.  The
    /// callee is resolved with an `Arc` bump — the function body is never
    /// cloned.
    fn call_indexed(&mut self, idx: u32, arg_base: usize, depth: usize) -> Result<Value, VmError> {
        if depth > self.max_call_depth {
            self.arg_scratch.truncate(arg_base);
            return Err(VmError::StackOverflow);
        }
        let entry = &mut self.funcs[idx as usize];
        entry.calls = entry.calls.saturating_add(1);
        let want_promote = self.promote_after_calls != u32::MAX
            && entry.fast.is_none()
            && entry.calls >= self.promote_after_calls;
        let func = entry.slow.clone();
        if func.params.len() != self.arg_scratch.len() - arg_base {
            self.arg_scratch.truncate(arg_base);
            return Err(VmError::ArityMismatch(func.name.clone()));
        }
        if want_promote {
            self.promote(idx, PromoteTrigger::Calls(self.funcs[idx as usize].calls));
        }
        self.stats.calls += 1;

        let frame_mark = self.backend.stack_frame_begin();
        let mut slots: Vec<Value> = vec![Value::default(); func.num_slots];
        for (param, i) in func.params.iter().zip(arg_base..) {
            slots[param.slot as usize] = self.arg_scratch[i];
        }
        self.arg_scratch.truncate(arg_base);

        let result = match self.funcs[idx as usize].fast.clone() {
            Some(fast) => {
                self.stats.fast_calls += 1;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.fast_call(idx);
                }
                self.exec_fast(&fast, &mut slots, depth, 0, idx)
            }
            None => {
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.slow_call(idx);
                }
                self.exec_body(&func, &mut slots, depth, idx)
            }
        };
        self.backend.stack_frame_end(frame_mark);
        result
    }

    /// Translate the function at table index `idx` into its fast form.
    fn promote(&mut self, idx: u32, trigger: PromoteTrigger) {
        if self.funcs[idx as usize].fast.is_some() {
            return;
        }
        let slow = self.funcs[idx as usize].slow.clone();
        let fast = FastFunction::translate(
            &slow,
            &self.program.registry,
            &self.globals,
            &self.func_index,
            &self.check_type_map,
            self.hoist_checks,
        );
        if self.check_guards.len() < fast.sites.len() {
            self.check_guards.resize(fast.sites.len(), false);
        }
        self.stats.tier_promotions += 1;
        let (reason, detail) = match trigger {
            PromoteTrigger::Calls(n) => ("promoted-after-calls", u64::from(n)),
            PromoteTrigger::Backjumps(n) => ("promoted-for-osr", u64::from(n)),
        };
        if let Some(p) = self.profiler.as_deref_mut() {
            p.promoted(idx, reason, detail);
        }
        let tracer = obs::san_tracer();
        if tracer.enabled() {
            tracer.event(
                "tier_promote",
                &[
                    ("func", slow.name.as_str().into()),
                    ("reason", reason.into()),
                    ("detail", detail.into()),
                    ("fast_instrs", fast.body.len().into()),
                    ("sites", fast.sites.len().into()),
                ],
            );
        }
        self.funcs[idx as usize].fast = Some(Arc::new(fast));
    }

    fn exec_body(
        &mut self,
        func: &Function,
        slots: &mut [Value],
        depth: usize,
        func_idx: u32,
    ) -> Result<Value, VmError> {
        let body = &func.body;
        let mut pc: usize = 0;
        // On-stack replacement: count backward jumps and switch this
        // activation to the fast tier mid-flight once the function is
        // clearly loop-hot (first call of a kernel that loops millions of
        // times would otherwise run cold for its entire first activation).
        let osr_enabled = func_idx != u32::MAX
            && self.promote_after_calls != u32::MAX
            && self.osr_after_backjumps != u32::MAX;
        let mut backjumps: u32 = 0;
        loop {
            if pc >= body.len() {
                return Ok(Value::Int(0));
            }
            let instr = &body[pc];
            if instr.is_check() {
                self.stats.check_instructions += 1;
            } else {
                self.stats.instructions += 1;
            }
            if let Some(p) = self.profiler.as_deref_mut() {
                p.slow_instr(func_idx);
            }
            if self.stats.instructions + self.stats.check_instructions > self.max_instructions {
                return Err(VmError::InstructionLimit);
            }
            pc += 1;
            match instr {
                Instr::Nop => {}
                Instr::Const { dst, value } => {
                    slots[*dst as usize] = match value {
                        Const::Int(v) => Value::Int(*v),
                        Const::Float(v) => Value::Float(*v),
                        Const::Null => Value::Ptr(Ptr::NULL),
                    };
                }
                Instr::Copy { dst, src } => {
                    slots[*dst as usize] = slots[*src as usize];
                }
                Instr::Bin {
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                } => {
                    let l = slots[*lhs as usize];
                    let r = slots[*rhs as usize];
                    slots[*dst as usize] = self.eval_bin(*op, l, r, *float)?;
                }
                Instr::Un {
                    dst,
                    op,
                    src,
                    float,
                } => {
                    let v = slots[*src as usize];
                    slots[*dst as usize] = match (op, float) {
                        (UnOp::Neg, true) => Value::Float(-v.as_float()),
                        (UnOp::Neg, false) => Value::Int(v.as_int().wrapping_neg()),
                        (UnOp::Not, _) => Value::Int(i64::from(!v.is_truthy())),
                        (UnOp::BitNot, _) => Value::Int(!v.as_int()),
                    };
                }
                Instr::Alloca { dst, ty, count } => {
                    let elem_size = self.program.registry.size_of(ty).unwrap_or(1).max(1);
                    // Saturate: a huge (attacker-controlled) element count
                    // must degrade into a failing allocation, not an
                    // interpreter panic on multiply overflow.
                    let size = elem_size.saturating_mul(*count.max(&1));
                    self.stats.allocations += 1;
                    let ptr = self.backend.on_alloc(size, ty, AllocKind::Stack);
                    slots[*dst as usize] = Value::Ptr(ptr);
                }
                Instr::GlobalAddr { dst, name } => {
                    let ptr = self.globals.get(name).copied().unwrap_or(Ptr::NULL);
                    slots[*dst as usize] = Value::Ptr(ptr);
                }
                Instr::Load { dst, ptr, ty } => {
                    self.stats.loads += 1;
                    let addr = slots[*ptr as usize].as_ptr();
                    slots[*dst as usize] = self.load_typed(addr, ty);
                }
                Instr::Store { ptr, src, ty } => {
                    self.stats.stores += 1;
                    let addr = slots[*ptr as usize].as_ptr();
                    let value = slots[*src as usize];
                    self.store_typed(addr, ty, value);
                }
                Instr::FieldAddr {
                    dst, base, offset, ..
                } => {
                    let b = slots[*base as usize].as_ptr();
                    slots[*dst as usize] = Value::Ptr(b.add(*offset));
                }
                Instr::PtrAdd {
                    dst,
                    base,
                    index,
                    elem_size,
                    ..
                } => {
                    let b = slots[*base as usize].as_ptr();
                    let i = slots[*index as usize].as_int();
                    slots[*dst as usize] = Value::Ptr(b.offset(i.wrapping_mul(*elem_size as i64)));
                }
                Instr::Cast {
                    dst,
                    src,
                    kind,
                    to_ty,
                    ..
                } => {
                    let v = slots[*src as usize];
                    slots[*dst as usize] = match kind {
                        CastKind::Bit | CastKind::IntToPtr => Value::Ptr(v.as_ptr()),
                        CastKind::PtrToInt => Value::Int(v.as_ptr().addr() as i64),
                        CastKind::Numeric => {
                            if to_ty.is_float() {
                                Value::Float(v.as_float())
                            } else {
                                Value::Int(v.as_int())
                            }
                        }
                    };
                }
                Instr::Call {
                    dst, callee, args, ..
                } => {
                    let arg_base = self.arg_scratch.len();
                    self.arg_scratch
                        .extend(args.iter().map(|a| slots[*a as usize]));
                    let result = self.call(callee, arg_base, depth + 1)?;
                    if let Some(d) = dst {
                        slots[*d as usize] = result;
                    }
                }
                Instr::CallBuiltin {
                    dst,
                    builtin,
                    args,
                    alloc_ty,
                    ..
                } => {
                    // Builtins read at most their first few arguments, so a
                    // fixed stack buffer replaces the per-call `Vec` on the
                    // hot path; oversized argument lists (which lowering
                    // never emits today) still materialise fully.
                    let mut argv = [Value::default(); 4];
                    let result = if args.len() <= argv.len() {
                        for (slot, arg) in argv.iter_mut().zip(args.iter()) {
                            *slot = slots[*arg as usize];
                        }
                        self.call_builtin(*builtin, &argv[..args.len()], alloc_ty.as_ref())?
                    } else {
                        let argv: Vec<Value> = args.iter().map(|a| slots[*a as usize]).collect();
                        self.call_builtin(*builtin, &argv, alloc_ty.as_ref())?
                    };
                    if let Some(d) = dst {
                        slots[*d as usize] = result;
                    }
                }
                Instr::Jump { target } => {
                    if *target < pc {
                        // Saturate: with OSR disabled a long-running loop
                        // would otherwise wrap (and panic in debug builds).
                        backjumps = backjumps.saturating_add(1);
                        if osr_enabled && backjumps >= self.osr_after_backjumps {
                            self.promote(func_idx, PromoteTrigger::Backjumps(backjumps));
                            if let Some(fast) = self.funcs[func_idx as usize].fast.clone() {
                                self.note_osr_entry(func_idx, backjumps);
                                let entry = fast.pc_map[*target] as usize;
                                return self.exec_fast(&fast, slots, depth, entry, func_idx);
                            }
                        }
                    }
                    pc = *target;
                }
                Instr::Branch {
                    cond,
                    then_target,
                    else_target,
                } => {
                    let t = if slots[*cond as usize].is_truthy() {
                        *then_target
                    } else {
                        *else_target
                    };
                    if t < pc {
                        backjumps = backjumps.saturating_add(1);
                        if osr_enabled && backjumps >= self.osr_after_backjumps {
                            self.promote(func_idx, PromoteTrigger::Backjumps(backjumps));
                            if let Some(fast) = self.funcs[func_idx as usize].fast.clone() {
                                self.note_osr_entry(func_idx, backjumps);
                                let entry = fast.pc_map[t] as usize;
                                return self.exec_fast(&fast, slots, depth, entry, func_idx);
                            }
                        }
                    }
                    pc = t;
                }
                Instr::Return { value } => {
                    return Ok(value.map(|v| slots[v as usize]).unwrap_or(Value::Int(0)));
                }

                // ----- checks -----
                Instr::TypeCheck {
                    dst,
                    ptr,
                    ty_id,
                    loc,
                    ..
                } => {
                    let p = slots[*ptr as usize].as_ptr();
                    let id = self.backend_type_id(*ty_id);
                    let b = self.backend.type_check(p, id, loc);
                    slots[*dst as usize] = Value::Bounds(b);
                    self.prof_check(loc, true);
                    if self.backend.halted() {
                        return Err(VmError::Halted);
                    }
                }
                Instr::CastCheck {
                    dst,
                    ptr,
                    ty_id,
                    loc,
                    ..
                } => {
                    let p = slots[*ptr as usize].as_ptr();
                    let id = self.backend_type_id(*ty_id);
                    let b = self.backend.cast_check(p, id, loc);
                    slots[*dst as usize] = Value::Bounds(b);
                    self.prof_check(loc, true);
                    if self.backend.halted() {
                        return Err(VmError::Halted);
                    }
                }
                Instr::BoundsGet { dst, ptr } => {
                    let p = slots[*ptr as usize].as_ptr();
                    let b = self.backend.bounds_get(p);
                    slots[*dst as usize] = Value::Bounds(b);
                }
                Instr::BoundsNarrow {
                    dst,
                    bounds,
                    field_base,
                    size,
                } => {
                    let b = slots[*bounds as usize].as_bounds();
                    let base = slots[*field_base as usize].as_ptr();
                    let field = Bounds::from_base_size(base, *size);
                    let narrowed = self.backend.bounds_narrow(b, field);
                    slots[*dst as usize] = Value::Bounds(narrowed);
                }
                Instr::BoundsCheck {
                    ptr,
                    bounds,
                    size,
                    escape,
                    loc,
                } => {
                    let p = slots[*ptr as usize].as_ptr();
                    let b = slots[*bounds as usize].as_bounds();
                    let ok = self.backend.bounds_check(p, *size, b, loc, *escape);
                    self.prof_check(loc, ok);
                    if self.backend.halted() {
                        return Err(VmError::Halted);
                    }
                }
                Instr::AccessCheck {
                    ptr,
                    size,
                    write,
                    loc,
                } => {
                    let p = slots[*ptr as usize].as_ptr();
                    let ok = self.backend.access_check(p, *size, *write, loc);
                    self.prof_check(loc, ok);
                    if self.backend.halted() {
                        return Err(VmError::Halted);
                    }
                }
                Instr::WideBounds { dst } => {
                    slots[*dst as usize] = Value::Bounds(Bounds::WIDE);
                }
            }
        }
    }

    /// Map an instrument-time check-type id to the backend's id space.
    #[inline]
    fn backend_type_id(&self, ty_id: TypeId) -> TypeId {
        self.check_type_map
            .get(ty_id.index())
            .copied()
            .unwrap_or(TypeId::UNTYPED)
    }

    /// Execute a fast-tier function body starting at fast-tier pc
    /// `entry` (0 for a call, a mapped jump target for OSR).
    ///
    /// Every arm replicates the slow tier's event order exactly —
    /// count, budget test, effect, halt test — including inside fused
    /// superinstructions, so all statistics and diagnostics are
    /// bit-identical between tiers.
    // `tick!()` decrements the budget register after the limit test; arms
    // that return or reload the register immediately afterwards leave that
    // final decrement dead, which is expected.
    #[allow(unused_assignments)]
    fn exec_fast(
        &mut self,
        func: &FastFunction,
        slots: &mut [Value],
        depth: usize,
        entry: usize,
        func_idx: u32,
    ) -> Result<Value, VmError> {
        let body = &func.body;
        let mut pc: usize = entry;
        // The instruction budget, kept in a register so the per-dispatch
        // limit test is a decrement instead of two counter loads and an
        // add.  `left == 0` exactly when the slow tier's
        // `instructions + check_instructions > max_instructions` would
        // fire on the next counted event; reloaded after nested calls,
        // which consume budget of their own.
        let mut left = self
            .max_instructions
            .saturating_sub(self.stats.instructions + self.stats.check_instructions);
        // Event counts accumulate in registers and flush to `self.stats`
        // at every exit and around nested calls, keeping the dispatch
        // loop free of memory traffic on its own counters.
        let mut n_instr: u64 = 0;
        let mut n_check: u64 = 0;
        let mut n_elided: u64 = 0;
        macro_rules! flush {
            () => {
                self.stats.instructions += n_instr;
                self.stats.check_instructions += n_check;
                self.stats.checks_elided += n_elided;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.fast_instrs(func_idx, n_instr + n_check);
                }
                n_instr = 0;
                n_check = 0;
                n_elided = 0;
            };
        }
        macro_rules! fail {
            ($e:expr) => {{
                flush!();
                return Err($e);
            }};
        }
        macro_rules! tick {
            () => {
                n_instr += 1;
                if left == 0 {
                    fail!(VmError::InstructionLimit);
                }
                left -= 1;
            };
        }
        macro_rules! tick_check {
            () => {
                n_check += 1;
                if left == 0 {
                    fail!(VmError::InstructionLimit);
                }
                left -= 1;
            };
        }
        macro_rules! halted {
            () => {
                if self.backend.halted() {
                    fail!(VmError::Halted);
                }
            };
        }
        loop {
            if pc >= body.len() {
                flush!();
                return Ok(Value::Int(0));
            }
            let cur = pc;
            pc += 1;
            match body[cur] {
                FastInstr::Nop => {
                    tick!();
                }
                FastInstr::ConstInt { dst, value } => {
                    tick!();
                    slots[dst as usize] = Value::Int(value);
                }
                FastInstr::ConstFloat { dst, value } => {
                    tick!();
                    slots[dst as usize] = Value::Float(value);
                }
                FastInstr::ConstNull { dst } => {
                    tick!();
                    slots[dst as usize] = Value::Ptr(Ptr::NULL);
                }
                FastInstr::Copy { dst, src } => {
                    tick!();
                    slots[dst as usize] = slots[src as usize];
                }
                FastInstr::Bin {
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                } => {
                    tick!();
                    let l = slots[lhs as usize];
                    let r = slots[rhs as usize];
                    slots[dst as usize] = match self.eval_bin(op, l, r, float) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    };
                }
                FastInstr::Un {
                    dst,
                    op,
                    src,
                    float,
                } => {
                    tick!();
                    let v = slots[src as usize];
                    slots[dst as usize] = match (op, float) {
                        (UnOp::Neg, true) => Value::Float(-v.as_float()),
                        (UnOp::Neg, false) => Value::Int(v.as_int().wrapping_neg()),
                        (UnOp::Not, _) => Value::Int(i64::from(!v.is_truthy())),
                        (UnOp::BitNot, _) => Value::Int(!v.as_int()),
                    };
                }
                FastInstr::Alloca { dst, ty, size } => {
                    tick!();
                    self.stats.allocations += 1;
                    let ptr =
                        self.backend
                            .on_alloc(size, &func.types[ty as usize], AllocKind::Stack);
                    slots[dst as usize] = Value::Ptr(ptr);
                }
                FastInstr::GlobalAddr { dst, ptr } => {
                    tick!();
                    slots[dst as usize] = Value::Ptr(ptr);
                }
                FastInstr::Load { dst, ptr, kind } => {
                    tick!();
                    self.stats.loads += 1;
                    let addr = slots[ptr as usize].as_ptr();
                    slots[dst as usize] = self.load_kinded(addr, kind);
                }
                FastInstr::Store { ptr, src, kind } => {
                    tick!();
                    self.stats.stores += 1;
                    let addr = slots[ptr as usize].as_ptr();
                    let value = slots[src as usize];
                    self.store_kinded(addr, kind, value);
                }
                FastInstr::FieldAddr { dst, base, offset } => {
                    tick!();
                    let b = slots[base as usize].as_ptr();
                    slots[dst as usize] = Value::Ptr(b.add(offset));
                }
                FastInstr::PtrAdd {
                    dst,
                    base,
                    index,
                    elem_size,
                } => {
                    tick!();
                    let b = slots[base as usize].as_ptr();
                    let i = slots[index as usize].as_int();
                    slots[dst as usize] = Value::Ptr(b.offset(i.wrapping_mul(elem_size as i64)));
                }
                FastInstr::CastPtr { dst, src } => {
                    tick!();
                    slots[dst as usize] = Value::Ptr(slots[src as usize].as_ptr());
                }
                FastInstr::CastPtrToInt { dst, src } => {
                    tick!();
                    slots[dst as usize] = Value::Int(slots[src as usize].as_ptr().addr() as i64);
                }
                FastInstr::CastFloat { dst, src } => {
                    tick!();
                    slots[dst as usize] = Value::Float(slots[src as usize].as_float());
                }
                FastInstr::CastInt { dst, src } => {
                    tick!();
                    slots[dst as usize] = Value::Int(slots[src as usize].as_int());
                }
                FastInstr::Call { dst, callee, args } => {
                    tick!();
                    let arg_base = self.arg_scratch.len();
                    let window =
                        &func.args[args.start as usize..args.start as usize + args.len as usize];
                    for &s in window {
                        let v = slots[s as usize];
                        self.arg_scratch.push(v);
                    }
                    flush!();
                    let result = self.call_indexed(callee, arg_base, depth + 1)?;
                    left = self
                        .max_instructions
                        .saturating_sub(self.stats.instructions + self.stats.check_instructions);
                    if dst != NO_INDEX {
                        slots[dst as usize] = result;
                    }
                }
                FastInstr::CallUnknown { dst, name, args } => {
                    tick!();
                    let arg_base = self.arg_scratch.len();
                    let window =
                        &func.args[args.start as usize..args.start as usize + args.len as usize];
                    for &s in window {
                        let v = slots[s as usize];
                        self.arg_scratch.push(v);
                    }
                    flush!();
                    let result = self.call(&func.names[name as usize], arg_base, depth + 1)?;
                    left = self
                        .max_instructions
                        .saturating_sub(self.stats.instructions + self.stats.check_instructions);
                    if dst != NO_INDEX {
                        slots[dst as usize] = result;
                    }
                }
                FastInstr::CallBuiltin {
                    dst,
                    builtin,
                    args,
                    alloc_ty,
                } => {
                    tick!();
                    let window =
                        &func.args[args.start as usize..args.start as usize + args.len as usize];
                    let alloc_ty = if alloc_ty == NO_INDEX {
                        None
                    } else {
                        Some(&func.types[alloc_ty as usize])
                    };
                    flush!();
                    let mut argv = [Value::default(); 4];
                    let result = if window.len() <= argv.len() {
                        for (slot, arg) in argv.iter_mut().zip(window.iter()) {
                            *slot = slots[*arg as usize];
                        }
                        self.call_builtin(builtin, &argv[..window.len()], alloc_ty)?
                    } else {
                        let argv: Vec<Value> = window.iter().map(|a| slots[*a as usize]).collect();
                        self.call_builtin(builtin, &argv, alloc_ty)?
                    };
                    if dst != NO_INDEX {
                        slots[dst as usize] = result;
                    }
                }
                FastInstr::Jump { target } => {
                    tick!();
                    pc = target as usize;
                }
                FastInstr::Branch {
                    cond,
                    then_target,
                    else_target,
                } => {
                    tick!();
                    pc = if slots[cond as usize].is_truthy() {
                        then_target as usize
                    } else {
                        else_target as usize
                    };
                }
                FastInstr::Return { value } => {
                    tick!();
                    flush!();
                    return Ok(if value == NO_INDEX {
                        Value::Int(0)
                    } else {
                        slots[value as usize]
                    });
                }

                // ----- checks -----
                FastInstr::TypeCheck { dst, ptr, ty, site } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = self.backend.type_check(p, ty, &func.sites[site as usize]);
                    slots[dst as usize] = Value::Bounds(b);
                    self.prof_check(&func.sites[site as usize], true);
                    halted!();
                }
                FastInstr::CastCheck { dst, ptr, ty, site } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = self.backend.cast_check(p, ty, &func.sites[site as usize]);
                    slots[dst as usize] = Value::Bounds(b);
                    self.prof_check(&func.sites[site as usize], true);
                    halted!();
                }
                FastInstr::BoundsGet { dst, ptr } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = self.backend.bounds_get(p);
                    slots[dst as usize] = Value::Bounds(b);
                }
                FastInstr::BoundsNarrow {
                    dst,
                    bounds,
                    field_base,
                    size,
                } => {
                    tick_check!();
                    let b = slots[bounds as usize].as_bounds();
                    let base = slots[field_base as usize].as_ptr();
                    let field = Bounds::from_base_size(base, size);
                    slots[dst as usize] = Value::Bounds(self.backend.bounds_narrow(b, field));
                }
                FastInstr::BoundsCheck {
                    ptr,
                    bounds,
                    size,
                    escape,
                    site,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = slots[bounds as usize].as_bounds();
                    let ok =
                        self.backend
                            .bounds_check(p, size, b, &func.sites[site as usize], escape);
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                }
                FastInstr::AccessCheck {
                    ptr,
                    size,
                    write,
                    site,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let ok = self
                        .backend
                        .access_check(p, size, write, &func.sites[site as usize]);
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                }
                FastInstr::WideBounds { dst } => {
                    tick_check!();
                    slots[dst as usize] = Value::Bounds(Bounds::WIDE);
                }

                // ----- superinstructions -----
                FastInstr::CheckLoad {
                    dst,
                    ptr,
                    bounds,
                    check_size,
                    site,
                    kind,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = slots[bounds as usize].as_bounds();
                    let ok = self.backend.bounds_check(
                        p,
                        check_size,
                        b,
                        &func.sites[site as usize],
                        false,
                    );
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                    tick!();
                    self.stats.loads += 1;
                    slots[dst as usize] = self.load_kinded(p, kind);
                }
                FastInstr::CheckStore {
                    ptr,
                    bounds,
                    src,
                    check_size,
                    site,
                    kind,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let b = slots[bounds as usize].as_bounds();
                    let ok = self.backend.bounds_check(
                        p,
                        check_size,
                        b,
                        &func.sites[site as usize],
                        false,
                    );
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                    tick!();
                    self.stats.stores += 1;
                    let value = slots[src as usize];
                    self.store_kinded(p, kind, value);
                }
                FastInstr::AccessLoad {
                    dst,
                    ptr,
                    check_size,
                    site,
                    kind,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let ok =
                        self.backend
                            .access_check(p, check_size, false, &func.sites[site as usize]);
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                    tick!();
                    self.stats.loads += 1;
                    slots[dst as usize] = self.load_kinded(p, kind);
                }
                FastInstr::AccessStore {
                    ptr,
                    src,
                    check_size,
                    site,
                    kind,
                    guard,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    let ok =
                        self.backend
                            .access_check(p, check_size, true, &func.sites[site as usize]);
                    if guard {
                        self.check_guards[site as usize] = ok;
                    }
                    self.prof_check(&func.sites[site as usize], ok);
                    halted!();
                    tick!();
                    self.stats.stores += 1;
                    let value = slots[src as usize];
                    self.store_kinded(p, kind, value);
                }

                // ----- dominated checks (check hoisting) -----
                //
                // When the dominating check passed on this execution of
                // the run (guard true), the dominated check must pass too
                // and its backend call is skipped; the site still ticks
                // `check_instructions` so budget exhaustion fires at the
                // same event as the slow tier.  When the dominator failed,
                // the full check runs here with its own site label, so the
                // diagnostic stream stays bit-identical.  A skipped check
                // also skips `halted()`: had the backend halted earlier,
                // the dominator's own arm would already have returned.
                FastInstr::ElidedBoundsCheck {
                    ptr,
                    bounds,
                    size,
                    site,
                    dom_site,
                } => {
                    tick_check!();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        let p = slots[ptr as usize].as_ptr();
                        let b = slots[bounds as usize].as_bounds();
                        self.backend
                            .bounds_check(p, size, b, &func.sites[site as usize], false);
                        halted!();
                    }
                }
                FastInstr::ElidedAccessCheck {
                    ptr,
                    size,
                    write,
                    site,
                    dom_site,
                } => {
                    tick_check!();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        let p = slots[ptr as usize].as_ptr();
                        self.backend
                            .access_check(p, size, write, &func.sites[site as usize]);
                        halted!();
                    }
                }
                FastInstr::ElidedCheckLoad {
                    dst,
                    ptr,
                    bounds,
                    check_size,
                    site,
                    dom_site,
                    kind,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        let b = slots[bounds as usize].as_bounds();
                        self.backend.bounds_check(
                            p,
                            check_size,
                            b,
                            &func.sites[site as usize],
                            false,
                        );
                        halted!();
                    }
                    tick!();
                    self.stats.loads += 1;
                    slots[dst as usize] = self.load_kinded(p, kind);
                }
                FastInstr::ElidedCheckStore {
                    ptr,
                    bounds,
                    src,
                    check_size,
                    site,
                    dom_site,
                    kind,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        let b = slots[bounds as usize].as_bounds();
                        self.backend.bounds_check(
                            p,
                            check_size,
                            b,
                            &func.sites[site as usize],
                            false,
                        );
                        halted!();
                    }
                    tick!();
                    self.stats.stores += 1;
                    let value = slots[src as usize];
                    self.store_kinded(p, kind, value);
                }
                FastInstr::ElidedAccessLoad {
                    dst,
                    ptr,
                    check_size,
                    site,
                    dom_site,
                    kind,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        self.backend
                            .access_check(p, check_size, false, &func.sites[site as usize]);
                        halted!();
                    }
                    tick!();
                    self.stats.loads += 1;
                    slots[dst as usize] = self.load_kinded(p, kind);
                }
                FastInstr::ElidedAccessStore {
                    ptr,
                    src,
                    check_size,
                    site,
                    dom_site,
                    kind,
                } => {
                    tick_check!();
                    let p = slots[ptr as usize].as_ptr();
                    if self.check_guards[dom_site as usize] {
                        n_elided += 1;
                        self.prof_elide(&func.sites[site as usize]);
                    } else {
                        self.prof_fallback(&func.sites[site as usize]);
                        self.backend
                            .access_check(p, check_size, true, &func.sites[site as usize]);
                        halted!();
                    }
                    tick!();
                    self.stats.stores += 1;
                    let value = slots[src as usize];
                    self.store_kinded(p, kind, value);
                }

                // ----- superinstructions: plain pairs -----
                FastInstr::Copy2 {
                    dst1,
                    src1,
                    dst2,
                    src2,
                } => {
                    tick!();
                    slots[dst1 as usize] = slots[src1 as usize];
                    tick!();
                    slots[dst2 as usize] = slots[src2 as usize];
                }
                FastInstr::CopyConst {
                    dst1,
                    src1,
                    dst2,
                    value,
                } => {
                    tick!();
                    slots[dst1 as usize] = slots[src1 as usize];
                    tick!();
                    slots[dst2 as usize] = Value::from_const(value);
                }
                FastInstr::ConstBin {
                    const_dst,
                    value,
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                } => {
                    tick!();
                    slots[const_dst as usize] = Value::from_const(value);
                    tick!();
                    let l = slots[lhs as usize];
                    let r = slots[rhs as usize];
                    slots[dst as usize] = match self.eval_bin(op, l, r, float) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    };
                }
                FastInstr::BinCopy {
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                    dst2,
                    src2,
                } => {
                    tick!();
                    let l = slots[lhs as usize];
                    let r = slots[rhs as usize];
                    slots[dst as usize] = match self.eval_bin(op, l, r, float) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    };
                    tick!();
                    slots[dst2 as usize] = slots[src2 as usize];
                }
                FastInstr::CopyBin {
                    dst1,
                    src1,
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                } => {
                    tick!();
                    slots[dst1 as usize] = slots[src1 as usize];
                    tick!();
                    let l = slots[lhs as usize];
                    let r = slots[rhs as usize];
                    slots[dst as usize] = match self.eval_bin(op, l, r, float) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    };
                }
                FastInstr::BinBranch {
                    dst,
                    op,
                    lhs,
                    rhs,
                    float,
                    cond,
                    then_target,
                    else_target,
                } => {
                    tick!();
                    let l = slots[lhs as usize];
                    let r = slots[rhs as usize];
                    slots[dst as usize] = match self.eval_bin(op, l, r, float) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    };
                    tick!();
                    pc = if slots[cond as usize].is_truthy() {
                        then_target as usize
                    } else {
                        else_target as usize
                    };
                }
                FastInstr::CopyJump { dst, src, target } => {
                    tick!();
                    slots[dst as usize] = slots[src as usize];
                    tick!();
                    pc = target as usize;
                }
                FastInstr::CopyBranch {
                    dst,
                    src,
                    cond,
                    then_target,
                    else_target,
                } => {
                    tick!();
                    slots[dst as usize] = slots[src as usize];
                    tick!();
                    pc = if slots[cond as usize].is_truthy() {
                        then_target as usize
                    } else {
                        else_target as usize
                    };
                }
                FastInstr::CopyPtrAdd {
                    dst1,
                    src1,
                    dst,
                    base,
                    index,
                    elem_size,
                } => {
                    tick!();
                    slots[dst1 as usize] = slots[src1 as usize];
                    tick!();
                    let b = slots[base as usize].as_ptr();
                    let i = slots[index as usize].as_int();
                    slots[dst as usize] = Value::Ptr(b.offset(i.wrapping_mul(elem_size as i64)));
                }
                FastInstr::PtrAddLoad {
                    addr,
                    base,
                    index,
                    elem_size,
                    dst,
                    kind,
                } => {
                    tick!();
                    let b = slots[base as usize].as_ptr();
                    let i = slots[index as usize].as_int();
                    let p = b.offset(i.wrapping_mul(elem_size as i64));
                    slots[addr as usize] = Value::Ptr(p);
                    tick!();
                    self.stats.loads += 1;
                    slots[dst as usize] = self.load_kinded(p, kind);
                }
                FastInstr::LoadCopy {
                    dst,
                    ptr,
                    kind,
                    dst2,
                    src2,
                } => {
                    tick!();
                    self.stats.loads += 1;
                    let addr = slots[ptr as usize].as_ptr();
                    slots[dst as usize] = self.load_kinded(addr, kind);
                    tick!();
                    slots[dst2 as usize] = slots[src2 as usize];
                }
                FastInstr::StoreCopy {
                    ptr,
                    src,
                    kind,
                    dst2,
                    src2,
                } => {
                    tick!();
                    self.stats.stores += 1;
                    let addr = slots[ptr as usize].as_ptr();
                    let value = slots[src as usize];
                    self.store_kinded(addr, kind, value);
                    tick!();
                    slots[dst2 as usize] = slots[src2 as usize];
                }
                FastInstr::LoadStore {
                    dst,
                    ptr_l,
                    kind_l,
                    ptr_s,
                    src,
                    kind_s,
                } => {
                    tick!();
                    self.stats.loads += 1;
                    let addr = slots[ptr_l as usize].as_ptr();
                    slots[dst as usize] = self.load_kinded(addr, kind_l);
                    tick!();
                    self.stats.stores += 1;
                    let addr = slots[ptr_s as usize].as_ptr();
                    let value = slots[src as usize];
                    self.store_kinded(addr, kind_s, value);
                }
            }
        }
    }

    /// Fast-tier load with a pre-resolved width (mirrors `load_typed`).
    #[inline(always)]
    fn load_kinded(&self, addr: Ptr, kind: LoadKind) -> Value {
        let mem = self.backend.memory();
        match kind {
            LoadKind::Ptr => Value::Ptr(Ptr(mem.read_u64(addr))),
            LoadKind::F32 => Value::Float(mem.read_f32(addr) as f64),
            LoadKind::F64 => Value::Float(mem.read_f64(addr)),
            LoadKind::Int(size) => {
                let raw = mem.read_uint(addr, size as u64);
                let shift = 64 - (size as u64 * 8);
                Value::Int(((raw << shift) as i64) >> shift)
            }
        }
    }

    /// Fast-tier store with a pre-resolved width (mirrors `store_typed`).
    #[inline(always)]
    fn store_kinded(&mut self, addr: Ptr, kind: LoadKind, value: Value) {
        let mem = self.backend.memory_mut();
        match kind {
            LoadKind::Ptr => mem.write_u64(addr, value.as_ptr().addr()),
            LoadKind::F32 => mem.write_f32(addr, value.as_float() as f32),
            LoadKind::F64 => mem.write_f64(addr, value.as_float()),
            LoadKind::Int(size) => mem.write_uint(addr, size as u64, value.as_int() as u64),
        }
    }

    #[inline(always)]
    fn eval_bin(&self, op: BinOp, l: Value, r: Value, float: bool) -> Result<Value, VmError> {
        if float {
            let a = l.as_float();
            let b = r.as_float();
            let v = match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => Value::Float(a / b),
                BinOp::Rem => Value::Float(a % b),
                BinOp::Lt => Value::Int(i64::from(a < b)),
                BinOp::Le => Value::Int(i64::from(a <= b)),
                BinOp::Gt => Value::Int(i64::from(a > b)),
                BinOp::Ge => Value::Int(i64::from(a >= b)),
                BinOp::Eq => Value::Int(i64::from(a == b)),
                BinOp::Ne => Value::Int(i64::from(a != b)),
                _ => Value::Int(0),
            };
            return Ok(v);
        }
        let a = l.as_int();
        let b = r.as_int();
        let v = match op {
            BinOp::Add => Value::Int(a.wrapping_add(b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                Value::Int(a.wrapping_div(b))
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                Value::Int(a.wrapping_rem(b))
            }
            BinOp::Shl => Value::Int(a.wrapping_shl(b as u32 & 63)),
            BinOp::Shr => Value::Int(a.wrapping_shr(b as u32 & 63)),
            BinOp::BitAnd => Value::Int(a & b),
            BinOp::BitOr => Value::Int(a | b),
            BinOp::BitXor => Value::Int(a ^ b),
            BinOp::Lt => Value::Int(i64::from(a < b)),
            BinOp::Le => Value::Int(i64::from(a <= b)),
            BinOp::Gt => Value::Int(i64::from(a > b)),
            BinOp::Ge => Value::Int(i64::from(a >= b)),
            BinOp::Eq => Value::Int(i64::from(a == b)),
            BinOp::Ne => Value::Int(i64::from(a != b)),
            BinOp::LogicalAnd => Value::Int(i64::from(a != 0 && b != 0)),
            BinOp::LogicalOr => Value::Int(i64::from(a != 0 || b != 0)),
        };
        Ok(v)
    }

    fn load_typed(&self, addr: Ptr, ty: &Type) -> Value {
        let mem = self.backend.memory();
        if ty.is_pointer() {
            return Value::Ptr(Ptr(mem.read_u64(addr)));
        }
        if ty.is_float() {
            let size = self.program.registry.size_of(ty).unwrap_or(8);
            return if size == 4 {
                Value::Float(mem.read_f32(addr) as f64)
            } else {
                Value::Float(mem.read_f64(addr))
            };
        }
        let size = self.program.registry.size_of(ty).unwrap_or(8).min(8);
        let raw = mem.read_uint(addr, size);
        // Sign-extend according to the width.
        let shift = 64 - (size * 8);
        Value::Int(((raw << shift) as i64) >> shift)
    }

    fn store_typed(&mut self, addr: Ptr, ty: &Type, value: Value) {
        let mem = self.backend.memory_mut();
        if ty.is_pointer() {
            mem.write_u64(addr, value.as_ptr().addr());
            return;
        }
        if ty.is_float() {
            let size = self.program.registry.size_of(ty).unwrap_or(8);
            if size == 4 {
                mem.write_f32(addr, value.as_float() as f32);
            } else {
                mem.write_f64(addr, value.as_float());
            }
            return;
        }
        let size = self.program.registry.size_of(ty).unwrap_or(8).min(8);
        mem.write_uint(addr, size, value.as_int() as u64);
    }

    fn call_builtin(
        &mut self,
        builtin: Builtin,
        args: &[Value],
        alloc_ty: Option<&Type>,
    ) -> Result<Value, VmError> {
        let loc: Arc<str> = Arc::from("builtin");
        let arg = |i: usize| args.get(i).copied().unwrap_or_default();
        match builtin {
            Builtin::Malloc | Builtin::New => {
                let size = arg(0).as_int().max(0) as u64;
                let ty = alloc_ty.cloned().unwrap_or_else(Type::char_);
                self.stats.allocations += 1;
                let p = self.backend.on_alloc(size, &ty, AllocKind::Heap);
                Ok(Value::Ptr(p))
            }
            Builtin::Calloc => {
                let n = arg(0).as_int().max(0) as u64;
                let sz = arg(1).as_int().max(0) as u64;
                let size = n.saturating_mul(sz);
                let ty = alloc_ty.cloned().unwrap_or_else(Type::char_);
                self.stats.allocations += 1;
                let p = self.backend.on_alloc(size, &ty, AllocKind::Heap);
                self.backend.memory_mut().fill(p, size, 0);
                Ok(Value::Ptr(p))
            }
            Builtin::Realloc => {
                let old = arg(0).as_ptr();
                let size = arg(1).as_int().max(0) as u64;
                let ty = alloc_ty.cloned().unwrap_or_else(Type::char_);
                self.stats.allocations += 1;
                self.stats.frees += 1;
                let p = self.backend.on_realloc(old, size, &ty, &loc);
                Ok(Value::Ptr(p))
            }
            Builtin::Free | Builtin::Delete => {
                let p = arg(0).as_ptr();
                self.stats.frees += 1;
                self.backend.on_free(p, &loc);
                Ok(Value::Int(0))
            }
            Builtin::CmaAlloc => {
                let size = arg(0).as_int().max(0) as u64;
                let ty = alloc_ty.cloned().unwrap_or_else(Type::char_);
                self.stats.allocations += 1;
                // Custom memory allocators are uninstrumented: the object is
                // legacy and invisible to every sanitizer.
                let p = self.backend.on_alloc(size, &ty, AllocKind::Legacy);
                Ok(Value::Ptr(p))
            }
            Builtin::CmaFree => Ok(Value::Int(0)),
            Builtin::Memcpy | Builtin::Memmove => {
                let dst = arg(0).as_ptr();
                let src = arg(1).as_ptr();
                let n = arg(2).as_int().max(0) as u64;
                self.stats.loads += 1;
                self.stats.stores += 1;
                self.backend.memory_mut().copy(dst, src, n);
                Ok(Value::Ptr(dst))
            }
            Builtin::Memset => {
                let dst = arg(0).as_ptr();
                let byte = arg(1).as_int() as u8;
                let n = arg(2).as_int().max(0) as u64;
                self.stats.stores += 1;
                self.backend.memory_mut().fill(dst, n, byte);
                Ok(Value::Ptr(dst))
            }
            Builtin::Strlen => {
                let p = arg(0).as_ptr();
                let mut len = 0u64;
                while len < 1 << 20 && self.backend.memory().read_u8(p.add(len)) != 0 {
                    len += 1;
                }
                self.stats.loads += 1;
                Ok(Value::Int(len as i64))
            }
            Builtin::PrintInt => {
                self.output.push(arg(0).as_int().to_string());
                Ok(Value::Int(0))
            }
            Builtin::PrintFloat => {
                self.output.push(format!("{:.6}", arg(0).as_float()));
                Ok(Value::Int(0))
            }
            Builtin::PrintStr => {
                let p = arg(0).as_ptr();
                let mut bytes = Vec::new();
                for i in 0..4096u64 {
                    let b = self.backend.memory().read_u8(p.add(i));
                    if b == 0 {
                        break;
                    }
                    bytes.push(b);
                }
                self.output
                    .push(String::from_utf8_lossy(&bytes).into_owned());
                Ok(Value::Int(0))
            }
            Builtin::Rand => {
                // xorshift64*
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                Ok(Value::Int(
                    (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as i64,
                ))
            }
            Builtin::Abort => Err(VmError::Aborted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effective_runtime::ErrorKind;
    use instrument::instrument_program;

    fn run_with(src: &str, kind: SanitizerKind, entry: &str, args: &[Value]) -> (Value, Vm) {
        let program = minic::compile(src).unwrap();
        let instrumented = instrument_program(&program, kind);
        let mut vm = Vm::new(
            Arc::new(instrumented),
            VmConfig {
                sanitizer: kind,
                ..Default::default()
            },
        );
        let v = vm.run(entry, args).unwrap();
        (v, vm)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }";
        let (v, _) = run_with(src, SanitizerKind::None, "fib", &[Value::Int(12)]);
        assert_eq!(v, Value::Int(144));
    }

    #[test]
    fn figure4_sum_runs_correctly_under_full_instrumentation() {
        let src = "int run(int n) {
                 int *a = (int *)malloc(n * sizeof(int));
                 for (int i = 0; i < n; i++) { a[i] = i; }
                 int s = 0;
                 for (int i = 0; i < n; i++) { s += a[i]; }
                 free(a);
                 return s;
             }";
        let (v, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[Value::Int(100)]);
        assert_eq!(v, Value::Int(4950));
        // No false positives on a correct program.
        assert_eq!(vm.backend().error_stats().distinct_issues, 0);
        assert!(vm.backend().stats().type_checks >= 1);
        assert!(vm.backend().stats().bounds_checks >= 200);
    }

    #[test]
    fn linked_list_traversal_with_type_checks() {
        let src = "struct node { int value; struct node *next; };
             int run(int n) {
                 struct node *head = NULL;
                 for (int i = 0; i < n; i++) {
                     struct node *nw = (struct node *)malloc(sizeof(struct node));
                     nw->value = i;
                     nw->next = head;
                     head = nw;
                 }
                 int len = 0;
                 struct node *xs = head;
                 while (xs != NULL) { len++; xs = xs->next; }
                 return len;
             }";
        let (v, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[Value::Int(50)]);
        assert_eq!(v, Value::Int(50));
        assert_eq!(vm.backend().error_stats().distinct_issues, 0);
        // The loop type-checks the pointer loaded from memory each
        // iteration: O(N) dynamic type checks (Figure 4 discussion).
        assert!(vm.backend().stats().type_checks as i64 >= 50);
    }

    #[test]
    fn subobject_overflow_is_detected_end_to_end() {
        // The introduction's account example: overflowing `number` into
        // `balance`.
        let src = "struct account { int number[8]; float balance; };
             int run(int idx) {
                 struct account *a = (struct account *)malloc(sizeof(struct account));
                 a->balance = 100.0;
                 int *n = a->number;
                 n[idx] = 7;
                 free(a);
                 return 0;
             }";
        // In-bounds write: no issue.
        let (_, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[Value::Int(3)]);
        assert_eq!(vm.backend().error_stats().distinct_issues, 0);
        // Out-of-bounds index 8 lands on `balance`: sub-object overflow.
        let (_, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[Value::Int(8)]);
        assert_eq!(
            vm.backend()
                .error_stats()
                .issues_of(ErrorKind::SubObjectBoundsOverflow),
            1
        );
        // AddressSanitizer misses it (stays inside the allocation).
        let program = minic::compile(src).unwrap();
        let asan = instrument_program(&program, SanitizerKind::AddressSanitizer);
        let mut vm = Vm::new(
            Arc::new(asan),
            VmConfig {
                sanitizer: SanitizerKind::AddressSanitizer,
                ..Default::default()
            },
        );
        vm.run("run", &[Value::Int(8)]).unwrap();
        assert_eq!(vm.backend().error_stats().bounds_issues(), 0);
    }

    #[test]
    fn use_after_free_and_double_free_detected() {
        // The dangling pointer is passed to another function, so the rule
        // (a) parameter check re-validates it against the (now FREE)
        // dynamic type — the same pattern as the perlbench UAF bug.
        let src = "struct S { int x; };
             int read_it(struct S *p) { return p->x; }
             int run(void) {
                 struct S *p = (struct S *)malloc(sizeof(struct S));
                 p->x = 1;
                 free(p);
                 int v = read_it(p);
                 free(p);
                 return v;
             }";
        let (_, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[]);
        let stats = vm.backend().error_stats();
        assert!(stats.issues_of(ErrorKind::UseAfterFree) >= 1);
        assert_eq!(stats.issues_of(ErrorKind::DoubleFree), 1);
    }

    #[test]
    fn type_confusion_via_cast_detected_by_full_and_type_variants() {
        let src = "struct S { int x; float y; };
             struct T { char buf[16]; };
             int run(void) {
                 struct S *s = (struct S *)malloc(sizeof(struct S));
                 struct T *t = (struct T *)s;
                 return 0;
             }
             int use_it(void) {
                 struct S *s = (struct S *)malloc(sizeof(struct S));
                 struct T *t = (struct T *)s;
                 t->buf[0] = 1;
                 return 0;
             }";
        // EffectiveSan-full: the unused cast is NOT checked...
        let (_, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[]);
        assert_eq!(vm.backend().error_stats().type_issues(), 0);
        // ...but the used one is.  (S contains ints/floats, T wants chars —
        // the char coercion makes the byte access legal, so use a pointer
        // use that genuinely mismatches below.)
        let (_, vm) = run_with(src, SanitizerKind::EffectiveType, "use_it", &[]);
        // The type variant checks the explicit cast regardless of use.
        assert!(vm.backend().stats().cast_checks >= 1);
    }

    #[test]
    fn globals_are_typed_and_accessible() {
        let src = "int table[16];
             int run(void) {
                 for (int i = 0; i < 16; i++) { table[i] = i * i; }
                 return table[7];
             }";
        let (v, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[]);
        assert_eq!(v, Value::Int(49));
        assert_eq!(vm.backend().error_stats().distinct_issues, 0);
    }

    #[test]
    fn cma_allocations_are_legacy_and_never_false_positive() {
        let src = "struct Obj { int a; int b; };
             int run(void) {
                 struct Obj *o = (struct Obj *)xmalloc(sizeof(struct Obj));
                 o->a = 1;
                 o->b = 2;
                 return o->a + o->b;
             }";
        let (v, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[]);
        assert_eq!(v, Value::Int(3));
        assert_eq!(vm.backend().error_stats().distinct_issues, 0);
        assert!(vm.backend().stats().legacy_type_checks >= 1);
    }

    #[test]
    fn memcpy_and_strings_work() {
        let src = r#"int run(void) {
                 char *buf = (char *)malloc(64);
                 memset(buf, 65, 8);
                 char *copy = (char *)malloc(64);
                 memcpy(copy, buf, 8);
                 print_str("done");
                 return strlen(copy) >= 8;
             }"#;
        let (v, vm) = run_with(src, SanitizerKind::EffectiveFull, "run", &[]);
        assert_eq!(v, Value::Int(1));
        assert_eq!(vm.output(), &["done".to_string()]);
    }

    #[test]
    fn instruction_limit_stops_runaway_loops() {
        let src = "int run(void) { int x = 0; while (1) { x += 1; } return x; }";
        let program = minic::compile(src).unwrap();
        let mut vm = Vm::new(
            Arc::new(program),
            VmConfig {
                sanitizer: SanitizerKind::None,
                max_instructions: 10_000,
                ..Default::default()
            },
        );
        assert_eq!(vm.run("run", &[]), Err(VmError::InstructionLimit));
    }

    #[test]
    fn division_by_zero_and_bad_entry_are_errors() {
        let src = "int run(int a) { return 10 / a; }";
        let program = Arc::new(minic::compile(src).unwrap());
        let mut vm = Vm::new(program.clone(), VmConfig::default());
        assert_eq!(
            vm.run("run", &[Value::Int(0)]),
            Err(VmError::DivisionByZero)
        );
        let mut vm = Vm::new(program, VmConfig::default());
        assert!(matches!(
            vm.run("nope", &[]),
            Err(VmError::UndefinedFunction(_))
        ));
    }

    #[test]
    fn cost_model_orders_sanitizers_by_coverage() {
        let src = "int run(int n) {
                 int *a = (int *)malloc(n * sizeof(int));
                 int s = 0;
                 for (int i = 0; i < n; i++) { a[i] = i; s += a[i]; }
                 free(a);
                 return s;
             }";
        let program = minic::compile(src).unwrap();
        let model = CostModel::default();
        let mut costs = std::collections::HashMap::new();
        for kind in [
            SanitizerKind::None,
            SanitizerKind::EffectiveFull,
            SanitizerKind::EffectiveBounds,
            SanitizerKind::EffectiveType,
        ] {
            let instrumented = instrument_program(&program, kind);
            let mut vm = Vm::new(
                Arc::new(instrumented),
                VmConfig {
                    sanitizer: kind,
                    ..Default::default()
                },
            );
            vm.run("run", &[Value::Int(1000)]).unwrap();
            let cost = model.cost(&vm.stats(), &vm.backend().stats());
            costs.insert(kind, cost);
        }
        let base = costs[&SanitizerKind::None];
        assert!(costs[&SanitizerKind::EffectiveFull] > costs[&SanitizerKind::EffectiveBounds]);
        assert!(costs[&SanitizerKind::EffectiveBounds] > base);
        assert!(costs[&SanitizerKind::EffectiveType] >= base);
        assert!(costs[&SanitizerKind::EffectiveFull] > 1.5 * base);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let src = "long run(void) { return rand() + rand(); }";
        let program = Arc::new(minic::compile(src).unwrap());
        let mut a = Vm::new(program.clone(), VmConfig::default());
        let mut b = Vm::new(program, VmConfig::default());
        assert_eq!(a.run("run", &[]).unwrap(), b.run("run", &[]).unwrap());
    }

    fn vm_with_tiering(src: &str, kind: SanitizerKind, promote: u32, osr: u32, hoist: bool) -> Vm {
        let program = minic::compile(src).unwrap();
        let instrumented = instrument_program(&program, kind);
        Vm::new(
            Arc::new(instrumented),
            VmConfig {
                sanitizer: kind,
                promote_after_calls: promote,
                osr_after_backjumps: osr,
                hoist_checks: hoist,
                ..Default::default()
            },
        )
    }

    const LOOPY: &str = "int run(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s += i; }
        return s;
    }";

    #[test]
    fn promote_threshold_zero_is_clamped_to_first_call() {
        // 0 would mean "promote before any profile exists"; it behaves
        // exactly like 1 — promotion on the first call.
        for threshold in [0, 1] {
            let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, threshold, u32::MAX, true);
            vm.run("run", &[Value::Int(4)]).unwrap();
            assert_eq!(vm.stats().tier_promotions, 1, "threshold {threshold}");
            assert_eq!(vm.stats().fast_calls, 1, "threshold {threshold}");
        }
    }

    #[test]
    fn promote_threshold_max_disables_tiering_entirely() {
        let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, u32::MAX, 1, true);
        vm.run("run", &[Value::Int(1000)]).unwrap();
        // promote=MAX also disables OSR: the loop ran 1000 backward jumps
        // in the slow tier without promoting.
        assert_eq!(vm.stats().tier_promotions, 0);
        assert_eq!(vm.stats().fast_calls, 0);
    }

    #[test]
    fn promote_threshold_max_minus_one_is_enabled_but_unreached() {
        // MAX-1 is a real (unreachable here) threshold, not "disabled":
        // small call counts stay slow, and nothing wraps or panics.
        let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, u32::MAX - 1, u32::MAX, true);
        for _ in 0..3 {
            vm.run("run", &[Value::Int(4)]).unwrap();
        }
        assert_eq!(vm.stats().tier_promotions, 0);
    }

    #[test]
    fn osr_threshold_edges_promote_mid_activation_or_never() {
        // osr=1 (and the clamped osr=0): the first backward jump of the
        // first activation promotes, so a single call still reaches the
        // fast tier.
        for threshold in [0, 1] {
            let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, 1000, threshold, true);
            vm.run("run", &[Value::Int(100)]).unwrap();
            assert_eq!(vm.stats().tier_promotions, 1, "osr {threshold}");
        }
        // osr=MAX disables OSR only: no promotion from a single hot call.
        let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, 1000, u32::MAX, true);
        vm.run("run", &[Value::Int(100)]).unwrap();
        assert_eq!(vm.stats().tier_promotions, 0);
        // osr=MAX-1 is enabled but unreached by a 100-iteration loop.
        let mut vm = vm_with_tiering(LOOPY, SanitizerKind::None, 1000, u32::MAX - 1, true);
        vm.run("run", &[Value::Int(100)]).unwrap();
        assert_eq!(vm.stats().tier_promotions, 0);
    }

    #[test]
    fn dominated_checks_are_elided_in_the_fast_tier() {
        // The loop body re-checks `p->a` three times per iteration (one
        // store guard, two load guards) over the same pointer, offset and
        // bounds value: the first check dominates the rest.
        let src = "struct pair { int a; int b; };
        int run(int n) {
            struct pair *p = (struct pair *)malloc(sizeof(struct pair));
            int s = 0;
            for (int i = 0; i < n; i++) {
                p->a = i;
                s += p->a * p->a;
            }
            free(p);
            return s;
        }";
        let mut fast = vm_with_tiering(src, SanitizerKind::EffectiveFull, 1, 1, true);
        let fast_result = fast.run("run", &[Value::Int(50)]).unwrap();
        let mut slow = vm_with_tiering(src, SanitizerKind::EffectiveFull, u32::MAX, u32::MAX, true);
        let slow_result = slow.run("run", &[Value::Int(50)]).unwrap();
        assert_eq!(fast_result, slow_result);
        assert!(
            fast.stats().checks_elided > 0,
            "no checks elided: {:?}",
            fast.stats()
        );
        // Elision only skips backend calls for the two relaxed counters;
        // everything else is bit-identical with the slow tier.
        assert_eq!(
            fast.backend().stats().bounds_checks + fast.stats().checks_elided,
            slow.backend().stats().bounds_checks
        );
        assert_eq!(
            fast.stats().check_instructions,
            slow.stats().check_instructions
        );
        assert_eq!(fast.backend().error_stats().distinct_issues, 0);
    }

    #[test]
    fn hoisting_can_be_disabled_by_config() {
        let src = "struct pair { int a; int b; };
        int run(int n) {
            struct pair *p = (struct pair *)malloc(sizeof(struct pair));
            int s = 0;
            for (int i = 0; i < n; i++) {
                p->a = i;
                s += p->a * p->a;
            }
            free(p);
            return s;
        }";
        let mut vm = vm_with_tiering(src, SanitizerKind::EffectiveFull, 1, 1, false);
        vm.run("run", &[Value::Int(50)]).unwrap();
        assert_eq!(vm.stats().checks_elided, 0);
        assert!(vm.stats().fast_calls > 0);
    }

    #[test]
    fn huge_alloca_count_degrades_instead_of_panicking() {
        // elem_size (8) × count overflows u64: the multiply must saturate
        // into a failing allocation, not panic the interpreter.
        let src = "int run(void) {
                 long a[4611686018427387900];
                 a[0] = 1;
                 return (int)a[0];
             }";
        let program = minic::compile(src).unwrap();
        let instrumented = instrument_program(&program, SanitizerKind::EffectiveFull);
        let mut vm = Vm::new(
            Arc::new(instrumented),
            VmConfig {
                sanitizer: SanitizerKind::EffectiveFull,
                ..Default::default()
            },
        );
        // The allocation fails (null / wide pointer); whatever the result,
        // the VM must not panic on the size computation.
        let _ = vm.run("run", &[]);
    }
}
