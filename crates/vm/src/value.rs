//! Runtime values held in VM slots.

use effective_runtime::Bounds;
use lowfat::Ptr;

/// A value held in a virtual-register slot during execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// An integer (also booleans, characters, enums).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A pointer into the simulated address space.
    Ptr(Ptr),
    /// A `BOUNDS` value produced by the instrumentation.
    Bounds(Bounds),
}

impl Value {
    /// Interpret the value as an integer (pointers give their address).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(f) => *f as i64,
            Value::Ptr(p) => p.addr() as i64,
            Value::Bounds(_) => 0,
        }
    }

    /// Interpret the value as a float.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(f) => *f,
            Value::Ptr(p) => p.addr() as f64,
            Value::Bounds(_) => 0.0,
        }
    }

    /// Interpret the value as a pointer.
    pub fn as_ptr(&self) -> Ptr {
        match self {
            Value::Ptr(p) => *p,
            Value::Int(v) => Ptr(*v as u64),
            Value::Float(f) => Ptr(*f as u64),
            Value::Bounds(_) => Ptr::NULL,
        }
    }

    /// Interpret the value as bounds (wide bounds when it is not one).
    pub fn as_bounds(&self) -> Bounds {
        match self {
            Value::Bounds(b) => *b,
            _ => Bounds::WIDE,
        }
    }

    /// Materialize a fast-tier constant operand.
    pub fn from_const(c: crate::tier::FastConst) -> Value {
        match c {
            crate::tier::FastConst::Int(v) => Value::Int(v),
            crate::tier::FastConst::Float(v) => Value::Float(v),
            crate::tier::FastConst::Null => Value::Ptr(Ptr::NULL),
        }
    }

    /// Truthiness for branches.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(f) => *f != 0.0,
            Value::Ptr(p) => !p.is_null(),
            Value::Bounds(_) => true,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::Int(7).as_float(), 7.0);
        assert_eq!(Value::Float(2.5).as_int(), 2);
        assert_eq!(Value::Ptr(Ptr(16)).as_int(), 16);
        assert_eq!(Value::Int(32).as_ptr(), Ptr(32));
        assert!(Value::Bounds(Bounds::WIDE).as_bounds().is_wide());
        assert_eq!(Value::Int(1).as_bounds(), Bounds::WIDE);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Ptr(Ptr::NULL).is_truthy());
        assert!(Value::Ptr(Ptr(8)).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert_eq!(Value::default(), Value::Int(0));
    }
}
