//! The opt-in VM/tier site profiler.
//!
//! Enabled by [`VmConfig::profile`](crate::VmConfig::profile); when off
//! (the default) the interpreter pays one predictable `Option` test per
//! would-be sample and nothing else.  When on, the profiler records
//!
//! * per-check-site outcome counts — hit (backend call passed), miss
//!   (backend call reported a violation), elided (skipped under a
//!   dominator's guard), guard-fallback (dominated check that ran in
//!   full because its dominator failed);
//! * per-function tier residency — instructions retired and activations
//!   dispatched in each tier;
//! * promotion and OSR events, in order, with the triggering counter.
//!
//! Profiling is observational only: it never feeds back into execution,
//! so a profiled run's `RunReport` is bit-identical to an unprofiled
//! one (pinned by the tiered differential suite).

use std::collections::HashMap;
use std::sync::Arc;

use obs::{FuncCounts, ProfileReport, SiteCounts, TierEvent};

/// Sample sink owned by a [`Vm`](crate::Vm) when profiling is enabled.
#[derive(Debug, Default)]
pub(crate) struct VmProfiler {
    /// Per-site outcome counts, keyed by the interned site label.
    sites: HashMap<Arc<str>, SiteCounts>,
    /// Per-function residency, parallel to the VM's function table.
    funcs: Vec<(String, FuncCounts)>,
    /// Tier transitions in program order.
    events: Vec<TierEvent>,
}

impl VmProfiler {
    /// A profiler over the VM's function table (in table order).
    pub(crate) fn new(func_names: Vec<String>) -> Self {
        VmProfiler {
            sites: HashMap::new(),
            funcs: func_names
                .into_iter()
                .map(|name| (name, FuncCounts::default()))
                .collect(),
            events: Vec::new(),
        }
    }

    fn site(&mut self, loc: &Arc<str>) -> &mut SiteCounts {
        self.sites.entry(Arc::clone(loc)).or_default()
    }

    /// A check executed its backend call: `passed` per the backend's
    /// verdict (type/cast checks, which report no verdict, pass `true`).
    #[inline]
    pub(crate) fn check(&mut self, loc: &Arc<str>, passed: bool) {
        let s = self.site(loc);
        if passed {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    }

    /// A dominated check was skipped under its dominator's guard.
    #[inline]
    pub(crate) fn elided(&mut self, loc: &Arc<str>) {
        self.site(loc).elided += 1;
    }

    /// A dominated check ran in full because its dominator's guard had
    /// recorded a failure.
    #[inline]
    pub(crate) fn fallback(&mut self, loc: &Arc<str>) {
        self.site(loc).guard_fallbacks += 1;
    }

    /// One instruction retired in the slow tier of function `idx`.
    #[inline]
    pub(crate) fn slow_instr(&mut self, idx: u32) {
        if let Some((_, c)) = self.funcs.get_mut(idx as usize) {
            c.slow_instructions += 1;
        }
    }

    /// `n` instructions retired in the fast tier of function `idx`.
    #[inline]
    pub(crate) fn fast_instrs(&mut self, idx: u32, n: u64) {
        if let Some((_, c)) = self.funcs.get_mut(idx as usize) {
            c.fast_instructions += n;
        }
    }

    /// An activation dispatched to the slow tier.
    #[inline]
    pub(crate) fn slow_call(&mut self, idx: u32) {
        if let Some((_, c)) = self.funcs.get_mut(idx as usize) {
            c.slow_calls += 1;
        }
    }

    /// An activation dispatched to the fast tier.
    #[inline]
    pub(crate) fn fast_call(&mut self, idx: u32) {
        if let Some((_, c)) = self.funcs.get_mut(idx as usize) {
            c.fast_calls += 1;
        }
    }

    /// Function `idx` was translated to the fast tier.
    pub(crate) fn promoted(&mut self, idx: u32, reason: &str, detail: u64) {
        if let Some((name, c)) = self.funcs.get_mut(idx as usize) {
            c.promotions += 1;
            self.events.push(TierEvent {
                func: name.clone(),
                reason: reason.to_string(),
                detail,
            });
        }
    }

    /// A slow activation of function `idx` switched to the fast tier
    /// mid-flight.
    pub(crate) fn osr_entry(&mut self, idx: u32, backjumps: u64) {
        if let Some((name, c)) = self.funcs.get_mut(idx as usize) {
            c.osr_entries += 1;
            self.events.push(TierEvent {
                func: name.clone(),
                reason: "osr-after-backjumps".to_string(),
                detail: backjumps,
            });
        }
    }

    /// Snapshot the collected profile as a plain-data report (sites and
    /// functions sorted by name; functions that never ran are dropped).
    pub(crate) fn report(&self) -> ProfileReport {
        let mut sites: Vec<(String, SiteCounts)> = self
            .sites
            .iter()
            .map(|(loc, c)| (loc.to_string(), *c))
            .collect();
        sites.sort_by(|a, b| a.0.cmp(&b.0));
        let mut funcs: Vec<(String, FuncCounts)> = self
            .funcs
            .iter()
            .filter(|(_, c)| *c != FuncCounts::default())
            .cloned()
            .collect();
        funcs.sort_by(|a, b| a.0.cmp(&b.0));
        ProfileReport {
            sites,
            funcs,
            events: self.events.clone(),
        }
    }
}
