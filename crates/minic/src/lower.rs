//! Lowering from the AST to the typed IR.
//!
//! Lowering also performs the semantic analysis the instrumentation
//! depends on: name resolution, static typing of every pointer-producing
//! expression, array-to-pointer decay, implicit conversions, and the
//! *allocation type inference* of Example 1 (a `malloc` result takes the
//! type of its first lvalue usage — in practice the cast or the declared
//! type of the variable it initialises).
//!
//! Local variables whose address is never taken (and that are of scalar
//! type) live in virtual-register slots; address-taken locals, arrays and
//! record-typed locals are materialised with [`Instr::Alloca`] so they
//! become typed low-fat stack objects at runtime, mirroring how the low-fat
//! stack allocator only intercepts escaping objects.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use effective_types::{BaseDef, FieldDef, RecordDef, RecordKind, Type, TypeRegistry};

use crate::ast::{self, BinOp, Expr, RecordKeyword, Stmt, UnOp, Unit};
use crate::error::{CompileError, ErrorKind};
use crate::ir::{Builtin, CastKind, Const, Function, Global, Instr, Param, Program, Slot};
use crate::token::Loc;

/// Lower a parsed unit to a [`Program`].
pub fn lower(unit: &Unit, source_lines: usize) -> Result<Program, CompileError> {
    let registry = build_registry(unit)?;
    let registry = Arc::new(registry);

    let mut globals = Vec::new();
    for g in &unit.globals {
        let size = registry.size_of(&g.ty).map_err(|e| {
            CompileError::new(ErrorKind::Sema, format!("global `{}`: {e}", g.name), g.loc)
        })?;
        let init = match &g.init {
            Some(Expr::IntLit(v, _)) => Some(encode_scalar(&registry, &g.ty, *v as f64, *v)),
            Some(Expr::FloatLit(v, _)) => Some(encode_scalar(&registry, &g.ty, *v, *v as i64)),
            Some(Expr::Null(_)) | None => None,
            Some(other) => {
                return Err(CompileError::new(
                    ErrorKind::Sema,
                    format!("global `{}` has a non-constant initialiser", g.name),
                    other.loc(),
                ))
            }
        };
        globals.push(Global {
            name: g.name.clone(),
            ty: g.ty.clone(),
            size,
            init,
        });
    }

    // Function signatures, for call typing.
    let mut signatures: HashMap<String, (Vec<Type>, Type)> = HashMap::new();
    for f in &unit.functions {
        signatures.insert(
            f.name.clone(),
            (
                f.params.iter().map(|p| p.ty.clone()).collect(),
                f.ret.clone(),
            ),
        );
    }

    let mut functions = HashMap::new();
    let mut string_counter = 0usize;
    for f in &unit.functions {
        let lowered =
            FunctionLowerer::new(&registry, &signatures, &mut globals, &mut string_counter)
                .lower_function(f)?;
        functions.insert(f.name.clone(), Arc::new(lowered));
    }

    Ok(Program {
        registry,
        globals,
        functions,
        source_lines,
    })
}

fn encode_scalar(registry: &TypeRegistry, ty: &Type, fval: f64, ival: i64) -> Vec<u8> {
    let size = registry.size_of(ty).unwrap_or(8) as usize;
    if ty.is_float() {
        match size {
            4 => (fval as f32).to_le_bytes().to_vec(),
            _ => fval.to_le_bytes()[..size.min(8)].to_vec(),
        }
    } else {
        ival.to_le_bytes()[..size.min(8)].to_vec()
    }
}

fn build_registry(unit: &Unit) -> Result<TypeRegistry, CompileError> {
    let mut registry = TypeRegistry::new();
    for r in &unit.records {
        if r.fields.is_empty() && r.bases.is_empty() && !r.has_virtual {
            // Forward declaration only; skip unless never defined (a later
            // full definition will register it).
            let defined_later = unit
                .records
                .iter()
                .any(|other| other.name == r.name && !other.fields.is_empty());
            if defined_later {
                continue;
            }
        }
        let kind = match r.keyword {
            RecordKeyword::Struct => RecordKind::Struct,
            RecordKeyword::Class => RecordKind::Class,
            RecordKeyword::Union => RecordKind::Union,
        };
        let def = RecordDef {
            tag: r.name.clone(),
            kind,
            bases: r.bases.iter().map(BaseDef::new).collect(),
            fields: r
                .fields
                .iter()
                .map(|f| FieldDef::new(f.name.clone(), f.ty.clone()))
                .collect(),
            has_virtual_methods: r.has_virtual,
        };
        // Conflicting redefinitions are themselves one of the paper's
        // findings (gcc, §6.1); keep the latest definition.
        registry.define_or_replace(def).map_err(|e| {
            CompileError::new(ErrorKind::Sema, format!("record `{}`: {e}", r.name), r.loc)
        })?;
    }
    Ok(registry)
}

/// An lvalue: either a virtual-register variable or a memory location.
enum LValue {
    /// A register-allocated local variable.
    Reg(Slot, Type),
    /// A memory location: pointer slot + the type stored there.
    Mem(Slot, Type),
}

#[derive(Clone)]
struct LocalVar {
    slot: Slot,
    ty: Type,
    /// The slot holds a *pointer* to the variable's storage.
    is_alloca: bool,
}

struct LoopContext {
    break_jumps: Vec<usize>,
    continue_jumps: Vec<usize>,
}

struct FunctionLowerer<'a> {
    registry: &'a Arc<TypeRegistry>,
    signatures: &'a HashMap<String, (Vec<Type>, Type)>,
    globals: &'a mut Vec<Global>,
    string_counter: &'a mut usize,
    global_types: HashMap<String, Type>,
    scopes: Vec<HashMap<String, LocalVar>>,
    body: Vec<Instr>,
    num_slots: usize,
    loops: Vec<LoopContext>,
    address_taken: HashSet<String>,
    fname: String,
}

impl<'a> FunctionLowerer<'a> {
    fn new(
        registry: &'a Arc<TypeRegistry>,
        signatures: &'a HashMap<String, (Vec<Type>, Type)>,
        globals: &'a mut Vec<Global>,
        string_counter: &'a mut usize,
    ) -> Self {
        let global_types = globals
            .iter()
            .map(|g| (g.name.clone(), g.ty.clone()))
            .collect();
        FunctionLowerer {
            registry,
            signatures,
            globals,
            string_counter,
            global_types,
            scopes: Vec::new(),
            body: Vec::new(),
            num_slots: 0,
            loops: Vec::new(),
            address_taken: HashSet::new(),
            fname: String::new(),
        }
    }

    fn err(&self, msg: impl Into<String>, loc: Loc) -> CompileError {
        CompileError::new(ErrorKind::Sema, msg, loc)
    }

    fn new_slot(&mut self) -> Slot {
        let s = self.num_slots as Slot;
        self.num_slots += 1;
        s
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.body.push(i);
        self.body.len() - 1
    }

    fn size_of(&self, ty: &Type, loc: Loc) -> Result<u64, CompileError> {
        self.registry
            .size_of(ty)
            .map_err(|e| self.err(format!("{e}"), loc))
    }

    // -----------------------------------------------------------------
    // Function
    // -----------------------------------------------------------------

    fn lower_function(mut self, f: &ast::FunctionDecl) -> Result<Function, CompileError> {
        self.fname = f.name.clone();
        collect_address_taken(&f.body, &mut self.address_taken);
        self.scopes.push(HashMap::new());

        let mut params = Vec::new();
        for p in &f.params {
            let slot = self.new_slot();
            params.push(Param {
                name: p.name.clone(),
                ty: p.ty.clone(),
                slot,
            });
            if self.address_taken.contains(&p.name) {
                // Spill the parameter to a stack object so its address can
                // be taken.
                let ptr = self.new_slot();
                self.emit(Instr::Alloca {
                    dst: ptr,
                    ty: p.ty.clone(),
                    count: 1,
                });
                self.emit(Instr::Store {
                    ptr,
                    src: slot,
                    ty: p.ty.clone(),
                });
                self.scopes.last_mut().expect("scope").insert(
                    p.name.clone(),
                    LocalVar {
                        slot: ptr,
                        ty: p.ty.clone(),
                        is_alloca: true,
                    },
                );
            } else {
                self.scopes.last_mut().expect("scope").insert(
                    p.name.clone(),
                    LocalVar {
                        slot,
                        ty: p.ty.clone(),
                        is_alloca: false,
                    },
                );
            }
        }

        for stmt in &f.body {
            self.lower_stmt(stmt)?;
        }
        // Implicit return.
        if !matches!(self.body.last(), Some(Instr::Return { .. })) {
            if f.ret.is_void() {
                self.emit(Instr::Return { value: None });
            } else {
                let zero = self.new_slot();
                self.emit(Instr::Const {
                    dst: zero,
                    value: Const::Int(0),
                });
                self.emit(Instr::Return { value: Some(zero) });
            }
        }

        Ok(Function {
            name: f.name.clone(),
            params,
            ret: f.ret.clone(),
            num_slots: self.num_slots,
            body: self.body,
        })
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                loc,
            } => self.lower_decl(name, ty, init.as_ref(), *loc),
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let (c, _) = self.lower_expr(cond)?;
                let branch_idx = self.emit(Instr::Branch {
                    cond: c,
                    then_target: 0,
                    else_target: 0,
                });
                let then_start = self.body.len();
                self.scopes.push(HashMap::new());
                for s in then_body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                let jump_over_else = self.emit(Instr::Jump { target: 0 });
                let else_start = self.body.len();
                self.scopes.push(HashMap::new());
                for s in else_body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                let end = self.body.len();
                self.patch_branch(branch_idx, then_start, else_start);
                self.patch_jump(jump_over_else, end);
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let cond_start = self.body.len();
                let (c, _) = self.lower_expr(cond)?;
                let branch_idx = self.emit(Instr::Branch {
                    cond: c,
                    then_target: 0,
                    else_target: 0,
                });
                let body_start = self.body.len();
                self.loops.push(LoopContext {
                    break_jumps: Vec::new(),
                    continue_jumps: Vec::new(),
                });
                self.scopes.push(HashMap::new());
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                self.emit(Instr::Jump { target: cond_start });
                let end = self.body.len();
                self.patch_branch(branch_idx, body_start, end);
                let ctx = self.loops.pop().expect("loop context");
                for j in ctx.break_jumps {
                    self.patch_jump(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch_jump(j, cond_start);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let cond_start = self.body.len();
                let branch_idx = match cond {
                    Some(c) => {
                        let (c, _) = self.lower_expr(c)?;
                        Some(self.emit(Instr::Branch {
                            cond: c,
                            then_target: 0,
                            else_target: 0,
                        }))
                    }
                    None => None,
                };
                let body_start = self.body.len();
                self.loops.push(LoopContext {
                    break_jumps: Vec::new(),
                    continue_jumps: Vec::new(),
                });
                self.scopes.push(HashMap::new());
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                let step_start = self.body.len();
                if let Some(step) = step {
                    self.lower_expr(step)?;
                }
                self.emit(Instr::Jump { target: cond_start });
                let end = self.body.len();
                if let Some(b) = branch_idx {
                    self.patch_branch(b, body_start, end);
                }
                let ctx = self.loops.pop().expect("loop context");
                for j in ctx.break_jumps {
                    self.patch_jump(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch_jump(j, step_start);
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, _) => {
                let value = match value {
                    Some(e) => {
                        let (s, _) = self.lower_expr(e)?;
                        Some(s)
                    }
                    None => None,
                };
                self.emit(Instr::Return { value });
                Ok(())
            }
            Stmt::Break(loc) => {
                let j = self.emit(Instr::Jump { target: 0 });
                match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.break_jumps.push(j);
                        Ok(())
                    }
                    None => Err(self.err("`break` outside a loop", *loc)),
                }
            }
            Stmt::Continue(loc) => {
                let j = self.emit(Instr::Jump { target: 0 });
                match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.continue_jumps.push(j);
                        Ok(())
                    }
                    None => Err(self.err("`continue` outside a loop", *loc)),
                }
            }
        }
    }

    fn lower_decl(
        &mut self,
        name: &str,
        ty: &Type,
        init: Option<&Expr>,
        loc: Loc,
    ) -> Result<(), CompileError> {
        let needs_alloca = self.address_taken.contains(name) || ty.is_array() || ty.is_record();
        if needs_alloca {
            let (elem_ty, count) = match ty {
                Type::Array(e, n) => (e.as_ref().clone(), *n),
                other => (other.clone(), 1),
            };
            let ptr = self.new_slot();
            self.emit(Instr::Alloca {
                dst: ptr,
                ty: elem_ty,
                count,
            });
            self.scopes.last_mut().expect("scope").insert(
                name.to_string(),
                LocalVar {
                    slot: ptr,
                    ty: ty.clone(),
                    is_alloca: true,
                },
            );
            if let Some(init) = init {
                if ty.is_array() || ty.is_record() {
                    return Err(self.err(
                        format!("aggregate initialisers are not supported (variable `{name}`)"),
                        loc,
                    ));
                }
                let (v, vty) = self.lower_expr_expect(init, Some(ty))?;
                let v = self.coerce(v, &vty, ty, loc)?;
                self.emit(Instr::Store {
                    ptr,
                    src: v,
                    ty: ty.clone(),
                });
            }
        } else {
            let slot = self.new_slot();
            self.scopes.last_mut().expect("scope").insert(
                name.to_string(),
                LocalVar {
                    slot,
                    ty: ty.clone(),
                    is_alloca: false,
                },
            );
            if let Some(init) = init {
                let (v, vty) = self.lower_expr_expect(init, Some(ty))?;
                let v = self.coerce(v, &vty, ty, loc)?;
                self.emit(Instr::Copy { dst: slot, src: v });
            } else {
                self.emit(Instr::Const {
                    dst: slot,
                    value: Const::Int(0),
                });
            }
        }
        Ok(())
    }

    fn patch_branch(&mut self, idx: usize, then_target: usize, else_target: usize) {
        if let Instr::Branch {
            then_target: t,
            else_target: e,
            ..
        } = &mut self.body[idx]
        {
            *t = then_target;
            *e = else_target;
        }
    }

    fn patch_jump(&mut self, idx: usize, target: usize) {
        if let Instr::Jump { target: t } = &mut self.body[idx] {
            *t = target;
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn lookup(&self, name: &str) -> Option<LocalVar> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Slot, Type), CompileError> {
        self.lower_expr_expect(e, None)
    }

    /// Lower an expression; `expected` propagates the declared/assigned type
    /// into allocation calls for the malloc-type inference of Example 1.
    fn lower_expr_expect(
        &mut self,
        e: &Expr,
        expected: Option<&Type>,
    ) -> Result<(Slot, Type), CompileError> {
        match e {
            Expr::IntLit(v, _) => {
                let dst = self.new_slot();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Int(*v),
                });
                Ok((dst, Type::int()))
            }
            Expr::FloatLit(v, _) => {
                let dst = self.new_slot();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Float(*v),
                });
                Ok((dst, Type::double()))
            }
            Expr::Null(_) => {
                let dst = self.new_slot();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Null,
                });
                Ok((dst, Type::void_ptr()))
            }
            Expr::StrLit(s, _) => {
                let name = format!("__str{}", *self.string_counter);
                *self.string_counter += 1;
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                let len = bytes.len() as u64;
                self.globals.push(Global {
                    name: name.clone(),
                    ty: Type::array(Type::char_(), len),
                    size: len,
                    init: Some(bytes),
                });
                self.global_types
                    .insert(name.clone(), Type::array(Type::char_(), len));
                let dst = self.new_slot();
                self.emit(Instr::GlobalAddr { dst, name });
                Ok((dst, Type::char_ptr()))
            }
            Expr::SizeOf(ty, loc) => {
                let size = self.size_of(ty, *loc)?;
                let dst = self.new_slot();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Int(size as i64),
                });
                Ok((dst, Type::long()))
            }
            Expr::Var(..) | Expr::Index { .. } | Expr::Member { .. } | Expr::Deref(..) => {
                let lv = self.lower_lvalue(e)?;
                match lv {
                    LValue::Reg(slot, ty) => {
                        let dst = self.new_slot();
                        self.emit(Instr::Copy { dst, src: slot });
                        Ok((dst, ty))
                    }
                    LValue::Mem(ptr, ty) => {
                        if ty.is_array() {
                            // Array-to-pointer decay: the address itself.
                            Ok((ptr, ty.decay()))
                        } else if ty.is_record() {
                            // Record rvalues are represented by their
                            // address (passing structs by value is not
                            // supported; member access goes through the
                            // lvalue path anyway).
                            Ok((ptr, Type::ptr(ty)))
                        } else {
                            let dst = self.new_slot();
                            self.emit(Instr::Load {
                                dst,
                                ptr,
                                ty: ty.clone(),
                            });
                            Ok((dst, ty))
                        }
                    }
                }
            }
            Expr::AddrOf(inner, loc) => {
                let lv = self.lower_lvalue(inner)?;
                match lv {
                    LValue::Mem(ptr, ty) => Ok((ptr, Type::ptr(ty))),
                    LValue::Reg(..) => Err(self.err(
                        "cannot take the address of a register variable (internal)",
                        *loc,
                    )),
                }
            }
            Expr::Unary { op, operand, loc } => {
                let (s, ty) = self.lower_expr(operand)?;
                let dst = self.new_slot();
                let float = ty.is_float() && *op == UnOp::Neg;
                let _ = loc;
                self.emit(Instr::Un {
                    dst,
                    op: *op,
                    src: s,
                    float,
                });
                let rty = match op {
                    UnOp::Not => Type::int(),
                    _ => ty,
                };
                Ok((dst, rty))
            }
            Expr::Binary { op, lhs, rhs, loc } => self.lower_binary(*op, lhs, rhs, *loc),
            Expr::Assign { lhs, rhs, loc } => {
                let lv = self.lower_lvalue(lhs)?;
                let lv_ty = match &lv {
                    LValue::Reg(_, t) | LValue::Mem(_, t) => t.clone(),
                };
                let (v, vty) = self.lower_expr_expect(rhs, Some(&lv_ty))?;
                let v = self.coerce(v, &vty, &lv_ty, *loc)?;
                match lv {
                    LValue::Reg(slot, _) => {
                        self.emit(Instr::Copy { dst: slot, src: v });
                    }
                    LValue::Mem(ptr, ty) => {
                        self.emit(Instr::Store { ptr, src: v, ty });
                    }
                }
                Ok((v, lv_ty))
            }
            Expr::Cast {
                ty,
                style: _,
                expr,
                loc,
            } => {
                let expect = ty.pointee().cloned();
                let (s, from_ty) = self.lower_expr_expect(expr, expect.as_ref())?;
                // C constraint: cast operands must be scalar (a record
                // rvalue cannot be cast to a pointer or arithmetic type,
                // and nothing can be cast to a record by value).
                if !ty.is_void() && (from_ty.is_record() || ty.is_record()) {
                    return Err(self.err(
                        format!("invalid cast from `{from_ty}` to `{ty}`: operands must be scalar"),
                        *loc,
                    ));
                }
                let kind = cast_kind(&from_ty, ty);
                let dst = self.new_slot();
                self.emit(Instr::Cast {
                    dst,
                    src: s,
                    kind,
                    from_ty,
                    to_ty: ty.clone(),
                    // Every source-written cast (including dynamic_cast) is
                    // an explicit cast site for the -type variant.
                    explicit: true,
                });
                let _ = loc;
                Ok((dst, ty.clone()))
            }
            Expr::New { ty, count, loc } => {
                let elem_size = self.size_of(ty, *loc)?;
                let size_slot = match count {
                    Some(c) => {
                        let (n, _) = self.lower_expr(c)?;
                        let sz = self.new_slot();
                        self.emit(Instr::Const {
                            dst: sz,
                            value: Const::Int(elem_size as i64),
                        });
                        let total = self.new_slot();
                        self.emit(Instr::Bin {
                            dst: total,
                            op: BinOp::Mul,
                            lhs: n,
                            rhs: sz,
                            float: false,
                        });
                        total
                    }
                    None => {
                        let sz = self.new_slot();
                        self.emit(Instr::Const {
                            dst: sz,
                            value: Const::Int(elem_size as i64),
                        });
                        sz
                    }
                };
                let dst = self.new_slot();
                self.emit(Instr::CallBuiltin {
                    dst: Some(dst),
                    builtin: Builtin::New,
                    args: vec![size_slot],
                    alloc_ty: Some(ty.clone()),
                    ret_ty: Type::ptr(ty.clone()),
                });
                Ok((dst, Type::ptr(ty.clone())))
            }
            Expr::Delete { expr, .. } => {
                let (p, _) = self.lower_expr(expr)?;
                self.emit(Instr::CallBuiltin {
                    dst: None,
                    builtin: Builtin::Delete,
                    args: vec![p],
                    alloc_ty: None,
                    ret_ty: Type::void(),
                });
                let dst = self.new_slot();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Int(0),
                });
                Ok((dst, Type::int()))
            }
            Expr::Conditional {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let (c, _) = self.lower_expr(cond)?;
                let result = self.new_slot();
                let branch = self.emit(Instr::Branch {
                    cond: c,
                    then_target: 0,
                    else_target: 0,
                });
                let then_start = self.body.len();
                let (tv, tty) = self.lower_expr(then_expr)?;
                self.emit(Instr::Copy {
                    dst: result,
                    src: tv,
                });
                let jump_end = self.emit(Instr::Jump { target: 0 });
                let else_start = self.body.len();
                let (ev, _ety) = self.lower_expr(else_expr)?;
                self.emit(Instr::Copy {
                    dst: result,
                    src: ev,
                });
                let end = self.body.len();
                self.patch_branch(branch, then_start, else_start);
                self.patch_jump(jump_end, end);
                Ok((result, tty))
            }
            Expr::Call { callee, args, loc } => self.lower_call(callee, args, *loc, expected),
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        loc: Loc,
    ) -> Result<(Slot, Type), CompileError> {
        // Short-circuit logical operators become control flow.
        if matches!(op, BinOp::LogicalAnd | BinOp::LogicalOr) {
            let result = self.new_slot();
            let (l, _) = self.lower_expr(lhs)?;
            self.emit(Instr::Copy {
                dst: result,
                src: l,
            });
            let branch = self.emit(Instr::Branch {
                cond: l,
                then_target: 0,
                else_target: 0,
            });
            let rhs_start = self.body.len();
            let (r, _) = self.lower_expr(rhs)?;
            self.emit(Instr::Copy {
                dst: result,
                src: r,
            });
            let end = self.body.len();
            match op {
                BinOp::LogicalAnd => self.patch_branch(branch, rhs_start, end),
                _ => self.patch_branch(branch, end, rhs_start),
            }
            // Normalise to 0/1.
            let zero = self.new_slot();
            self.emit(Instr::Const {
                dst: zero,
                value: Const::Int(0),
            });
            let norm = self.new_slot();
            self.emit(Instr::Bin {
                dst: norm,
                op: BinOp::Ne,
                lhs: result,
                rhs: zero,
                float: false,
            });
            return Ok((norm, Type::int()));
        }

        let (l, lty) = self.lower_expr(lhs)?;
        let (r, rty) = self.lower_expr(rhs)?;

        // Pointer arithmetic: p + i, p - i, p[i] is handled elsewhere.
        if lty.is_pointer() && rty.is_integer() && matches!(op, BinOp::Add | BinOp::Sub) {
            let elem_ty = lty.pointee().cloned().unwrap_or_else(Type::char_);
            let elem_size = self.size_of(&elem_ty, loc).unwrap_or(1);
            let index = if op == BinOp::Sub {
                let neg = self.new_slot();
                self.emit(Instr::Un {
                    dst: neg,
                    op: UnOp::Neg,
                    src: r,
                    float: false,
                });
                neg
            } else {
                r
            };
            let dst = self.new_slot();
            self.emit(Instr::PtrAdd {
                dst,
                base: l,
                index,
                elem_size,
                elem_ty,
            });
            return Ok((dst, lty));
        }
        // Pointer difference.
        if lty.is_pointer() && rty.is_pointer() && op == BinOp::Sub {
            let raw = self.new_slot();
            self.emit(Instr::Bin {
                dst: raw,
                op: BinOp::Sub,
                lhs: l,
                rhs: r,
                float: false,
            });
            let elem_ty = lty.pointee().cloned().unwrap_or_else(Type::char_);
            let elem_size = self.size_of(&elem_ty, loc).unwrap_or(1).max(1);
            let sz = self.new_slot();
            self.emit(Instr::Const {
                dst: sz,
                value: Const::Int(elem_size as i64),
            });
            let dst = self.new_slot();
            self.emit(Instr::Bin {
                dst,
                op: BinOp::Div,
                lhs: raw,
                rhs: sz,
                float: false,
            });
            return Ok((dst, Type::long()));
        }

        // Numeric operands: promote to float if either side is float.
        let float = lty.is_float() || rty.is_float();
        // Bitwise and shift operators are integer-only in C; the VM has no
        // float evaluation for them, so reject here instead of letting the
        // interpreter silently produce 0.
        if float
            && matches!(
                op,
                BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
            )
        {
            return Err(self.err(
                format!("invalid operands to `{op:?}`: bitwise and shift operators require integer operands"),
                loc,
            ));
        }
        let (l, r) = if float {
            let l = if lty.is_float() {
                l
            } else {
                self.emit_numeric_cast(l, &lty, &Type::double())
            };
            let r = if rty.is_float() {
                r
            } else {
                self.emit_numeric_cast(r, &rty, &Type::double())
            };
            (l, r)
        } else {
            (l, r)
        };
        let dst = self.new_slot();
        self.emit(Instr::Bin {
            dst,
            op,
            lhs: l,
            rhs: r,
            float,
        });
        let rty = match op {
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => Type::int(),
            _ if float => Type::double(),
            _ if lty.is_pointer() => lty,
            _ => Type::int(),
        };
        Ok((dst, rty))
    }

    fn emit_numeric_cast(&mut self, src: Slot, from: &Type, to: &Type) -> Slot {
        let dst = self.new_slot();
        self.emit(Instr::Cast {
            dst,
            src,
            kind: CastKind::Numeric,
            from_ty: from.clone(),
            to_ty: to.clone(),
            explicit: false,
        });
        dst
    }

    /// Implicit conversion of `slot` from `from` to `to`.
    fn coerce(
        &mut self,
        slot: Slot,
        from: &Type,
        to: &Type,
        _loc: Loc,
    ) -> Result<Slot, CompileError> {
        if from == to {
            return Ok(slot);
        }
        if from.is_float() != to.is_float()
            && to.is_scalar()
            && from.is_scalar()
            && !to.is_pointer()
        {
            return Ok(self.emit_numeric_cast(slot, from, to));
        }
        if to.is_pointer() && from.is_integer() {
            let dst = self.new_slot();
            self.emit(Instr::Cast {
                dst,
                src: slot,
                kind: CastKind::IntToPtr,
                from_ty: from.clone(),
                to_ty: to.clone(),
                explicit: false,
            });
            return Ok(dst);
        }
        if to.is_pointer() && from.is_pointer() {
            // Implicit pointer conversion (e.g. void* → T*, derived → base):
            // an implicit bit cast; EffectiveSan checks the *use*, not the
            // conversion.
            let dst = self.new_slot();
            self.emit(Instr::Cast {
                dst,
                src: slot,
                kind: CastKind::Bit,
                from_ty: from.clone(),
                to_ty: to.clone(),
                explicit: false,
            });
            return Ok(dst);
        }
        // Anything else: pass through (integer width changes etc.).
        Ok(slot)
    }

    fn lower_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        loc: Loc,
        expected: Option<&Type>,
    ) -> Result<(Slot, Type), CompileError> {
        if let Some(builtin) = Builtin::from_name(callee) {
            let mut arg_slots = Vec::new();
            for a in args {
                let (s, _) = self.lower_expr(a)?;
                arg_slots.push(s);
            }
            let alloc_ty = if builtin.is_allocation() {
                // Example 1's allocation-type inference: the expectation is
                // either the cast target's pointee (already an element type)
                // or the declared pointer type of the receiving lvalue.
                let inferred = expected
                    .map(|t| t.pointee().cloned().unwrap_or_else(|| t.clone()))
                    .unwrap_or_else(Type::char_);
                Some(if inferred.is_void() {
                    Type::char_()
                } else {
                    inferred
                })
            } else {
                None
            };
            let ret_ty = match builtin {
                Builtin::Malloc | Builtin::Calloc | Builtin::Realloc | Builtin::CmaAlloc => {
                    Type::ptr(alloc_ty.clone().unwrap_or_else(Type::char_))
                }
                Builtin::Memcpy | Builtin::Memmove | Builtin::Memset => Type::void_ptr(),
                Builtin::Strlen | Builtin::Rand => Type::long(),
                _ => Type::void(),
            };
            let dst = if ret_ty.is_void() {
                None
            } else {
                Some(self.new_slot())
            };
            self.emit(Instr::CallBuiltin {
                dst,
                builtin,
                args: arg_slots,
                alloc_ty,
                ret_ty: ret_ty.clone(),
            });
            let result = match dst {
                Some(d) => d,
                None => {
                    let d = self.new_slot();
                    self.emit(Instr::Const {
                        dst: d,
                        value: Const::Int(0),
                    });
                    d
                }
            };
            return Ok((result, ret_ty));
        }

        let (param_tys, ret_ty) = self
            .signatures
            .get(callee)
            .cloned()
            .ok_or_else(|| self.err(format!("call to undefined function `{callee}`"), loc))?;
        if param_tys.len() != args.len() {
            return Err(self.err(
                format!(
                    "`{callee}` expects {} argument(s), {} given",
                    param_tys.len(),
                    args.len()
                ),
                loc,
            ));
        }
        let mut arg_slots = Vec::new();
        let mut arg_tys = Vec::new();
        for (a, pty) in args.iter().zip(&param_tys) {
            let (s, aty) = self.lower_expr_expect(a, Some(pty))?;
            let s = self.coerce(s, &aty, pty, loc)?;
            arg_slots.push(s);
            arg_tys.push(pty.clone());
        }
        let dst = if ret_ty.is_void() {
            None
        } else {
            Some(self.new_slot())
        };
        self.emit(Instr::Call {
            dst,
            callee: callee.to_string(),
            args: arg_slots,
            arg_tys,
            ret_ty: ret_ty.clone(),
        });
        let result = match dst {
            Some(d) => d,
            None => {
                let d = self.new_slot();
                self.emit(Instr::Const {
                    dst: d,
                    value: Const::Int(0),
                });
                d
            }
        };
        Ok((result, ret_ty))
    }

    // -----------------------------------------------------------------
    // Lvalues
    // -----------------------------------------------------------------

    fn lower_lvalue(&mut self, e: &Expr) -> Result<LValue, CompileError> {
        match e {
            Expr::Var(name, loc) => {
                if let Some(var) = self.lookup(name) {
                    if var.is_alloca {
                        Ok(LValue::Mem(var.slot, var.ty))
                    } else {
                        Ok(LValue::Reg(var.slot, var.ty))
                    }
                } else if let Some(gty) = self.global_types.get(name).cloned() {
                    let dst = self.new_slot();
                    self.emit(Instr::GlobalAddr {
                        dst,
                        name: name.clone(),
                    });
                    Ok(LValue::Mem(dst, gty))
                } else {
                    Err(self.err(format!("unknown variable `{name}`"), *loc))
                }
            }
            Expr::Deref(inner, loc) => {
                let (p, ty) = self.lower_expr(inner)?;
                let pointee = ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| self.err("cannot dereference a non-pointer", *loc))?;
                Ok(LValue::Mem(p, pointee))
            }
            Expr::Index { base, index, loc } => {
                let (b, bty) = self.lower_expr(base)?;
                let elem_ty = match &bty {
                    Type::Pointer(p) => p.as_ref().clone(),
                    Type::Array(e, _) | Type::IncompleteArray(e) => e.as_ref().clone(),
                    other => {
                        return Err(
                            self.err(format!("cannot index a value of type `{other}`"), *loc)
                        )
                    }
                };
                let (i, _ity) = self.lower_expr(index)?;
                let elem_size = self.size_of(&elem_ty, *loc)?;
                let dst = self.new_slot();
                self.emit(Instr::PtrAdd {
                    dst,
                    base: b,
                    index: i,
                    elem_size,
                    elem_ty: elem_ty.clone(),
                });
                Ok(LValue::Mem(dst, elem_ty))
            }
            Expr::Member {
                base,
                field,
                arrow,
                loc,
            } => {
                let (base_ptr, record_ty) = if *arrow {
                    let (p, ty) = self.lower_expr(base)?;
                    let pointee = ty
                        .pointee()
                        .cloned()
                        .ok_or_else(|| self.err("`->` applied to a non-pointer", *loc))?;
                    (p, pointee)
                } else {
                    match self.lower_lvalue(base)? {
                        LValue::Mem(p, ty) => (p, ty),
                        LValue::Reg(_, ty) => {
                            return Err(self.err(
                                format!("cannot access member of register value of type `{ty}`"),
                                *loc,
                            ))
                        }
                    }
                };
                let tag = record_ty.record_tag().ok_or_else(|| {
                    self.err(
                        format!("member access on non-record type `{record_ty}`"),
                        *loc,
                    )
                })?;
                let (offset, field_ty) = self.resolve_field(tag, field, *loc)?;
                let field_size = self.size_of(&field_ty, *loc)?;
                let dst = self.new_slot();
                self.emit(Instr::FieldAddr {
                    dst,
                    base: base_ptr,
                    record: record_ty.clone(),
                    field: field.clone(),
                    offset,
                    field_ty: field_ty.clone(),
                    field_size,
                });
                Ok(LValue::Mem(dst, field_ty))
            }
            other => Err(self.err("expression is not an lvalue", other.loc())),
        }
    }

    /// Resolve a field by name, searching base classes (fields of embedded
    /// bases are accessible through the derived class, as in C++).
    fn resolve_field(&self, tag: &str, field: &str, loc: Loc) -> Result<(u64, Type), CompileError> {
        let layout = self
            .registry
            .layout(tag)
            .map_err(|e| self.err(format!("{e}"), loc))?;
        if let Some(m) = layout.member(field) {
            return Ok((m.offset, m.ty.clone()));
        }
        // Search embedded bases recursively.
        for base in layout.bases() {
            if let Some(base_tag) = base.ty.record_tag() {
                if let Ok((off, ty)) = self.resolve_field(base_tag, field, loc) {
                    return Ok((base.offset + off, ty));
                }
            }
        }
        Err(self.err(format!("record `{tag}` has no member named `{field}`"), loc))
    }
}

fn cast_kind(from: &Type, to: &Type) -> CastKind {
    match (from.is_pointer(), to.is_pointer()) {
        (true, true) => CastKind::Bit,
        (true, false) => CastKind::PtrToInt,
        (false, true) => CastKind::IntToPtr,
        (false, false) => CastKind::Numeric,
    }
}

/// Collect the names of local variables whose address is taken with `&`.
fn collect_address_taken(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::AddrOf(inner, _) => {
                if let Expr::Var(name, _) = inner.as_ref() {
                    out.insert(name.clone());
                }
                walk_expr(inner, out);
            }
            Expr::Unary { operand, .. } => walk_expr(operand, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Assign { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Index { base, index, .. } => {
                walk_expr(base, out);
                walk_expr(index, out);
            }
            Expr::Member { base, .. } => walk_expr(base, out),
            Expr::Deref(inner, _) => walk_expr(inner, out),
            Expr::Cast { expr, .. } => walk_expr(expr, out),
            Expr::Call { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::New { count: Some(c), .. } => walk_expr(c, out),
            Expr::Delete { expr, .. } => walk_expr(expr, out),
            Expr::Conditional {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                walk_expr(cond, out);
                walk_expr(then_expr, out);
                walk_expr(else_expr, out);
            }
            _ => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Decl { init: Some(e), .. } => walk_expr(e, out),
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                walk_expr(cond, out);
                collect_address_taken(then_body, out);
                collect_address_taken(else_body, out);
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, out);
                collect_address_taken(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    collect_address_taken(std::slice::from_ref(i), out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(st) = step {
                    walk_expr(st, out);
                }
                collect_address_taken(body, out);
            }
            Stmt::Return(Some(e), _) => walk_expr(e, out),
            Stmt::Block(body) => collect_address_taken(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Program {
        let unit = parse(src).unwrap();
        lower(&unit, src.lines().count()).unwrap()
    }

    #[test]
    fn lower_sum_function() {
        let p = compile(
            "int sum(int *a, int len) {
                 int s = 0;
                 for (int i = 0; i < len; i++) { s += a[i]; }
                 return s;
             }",
        );
        let f = p.function("sum").unwrap();
        assert_eq!(f.params.len(), 2);
        // The array access produces a PtrAdd followed by a Load of int.
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::PtrAdd { elem_size: 4, .. })));
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::Load { ty, .. } if *ty == Type::int())));
        // No allocas: all locals are register slots.
        assert!(!f.body.iter().any(|i| matches!(i, Instr::Alloca { .. })));
    }

    #[test]
    fn lower_linked_list_length() {
        let p = compile(
            "struct node { int value; struct node *next; };
             int length(struct node *xs) {
                 int len = 0;
                 while (xs != NULL) {
                     len++;
                     xs = xs->next;
                 }
                 return len;
             }",
        );
        let f = p.function("length").unwrap();
        // `xs->next` is a FieldAddr + Load of node*.
        assert!(f.body.iter().any(|i| matches!(
            i,
            Instr::FieldAddr { field, offset: 8, .. } if field == "next"
        )));
        assert!(f.body.iter().any(
            |i| matches!(i, Instr::Load { ty, .. } if *ty == Type::ptr(Type::struct_("node")))
        ));
    }

    #[test]
    fn malloc_type_inference_from_cast_and_decl() {
        let p = compile(
            "struct T { float f; int x; };
             void f() {
                 struct T *a = (struct T *)malloc(sizeof(struct T));
                 struct T *b = malloc(100 * sizeof(struct T));
                 char *c = malloc(64);
             }",
        );
        let f = p.function("f").unwrap();
        let allocs: Vec<_> = f
            .body
            .iter()
            .filter_map(|i| match i {
                Instr::CallBuiltin {
                    builtin: Builtin::Malloc,
                    alloc_ty,
                    ..
                } => Some(alloc_ty.clone().unwrap()),
                _ => None,
            })
            .collect();
        assert_eq!(allocs.len(), 3);
        assert_eq!(allocs[0], Type::struct_("T"));
        assert_eq!(allocs[1], Type::struct_("T"));
        assert_eq!(allocs[2], Type::char_());
    }

    #[test]
    fn new_and_delete_lower_to_builtins() {
        let p = compile(
            "class T { int x; };
             void f() { T *q = new T; T *s = new T[10]; delete q; delete[] s; }",
        );
        let f = p.function("f").unwrap();
        let news = f
            .body
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::CallBuiltin {
                        builtin: Builtin::New,
                        ..
                    }
                )
            })
            .count();
        let deletes = f
            .body
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::CallBuiltin {
                        builtin: Builtin::Delete,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(news, 2);
        assert_eq!(deletes, 2);
    }

    #[test]
    fn address_taken_locals_become_allocas() {
        let p = compile(
            "void g(int *p) { }
             void f() {
                 int x = 1;
                 int arr[4];
                 g(&x);
                 arr[0] = x;
             }",
        );
        let f = p.function("f").unwrap();
        let allocas = f
            .body
            .iter()
            .filter(|i| matches!(i, Instr::Alloca { .. }))
            .count();
        assert_eq!(allocas, 2); // x (address taken) and arr (array)
    }

    #[test]
    fn struct_locals_use_allocas_and_field_addr() {
        let p = compile(
            "struct P { int x; int y; };
             int f() { struct P p; p.x = 1; p.y = 2; return p.x + p.y; }",
        );
        let f = p.function("f").unwrap();
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::Alloca { ty, .. } if *ty == Type::struct_("P"))));
        let field_addrs = f
            .body
            .iter()
            .filter(|i| matches!(i, Instr::FieldAddr { .. }))
            .count();
        assert!(field_addrs >= 4);
    }

    #[test]
    fn inherited_fields_resolve_through_base() {
        let p = compile(
            "class Base { int id; };
             class Derived : public Base { int extra; };
             int f(Derived *d) { return d->id + d->extra; }",
        );
        let f = p.function("f").unwrap();
        // `id` resolves at offset 0 (inside the embedded Base), `extra` at 4.
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::FieldAddr { field, offset: 0, .. } if field == "id")));
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::FieldAddr { field, offset: 4, .. } if field == "extra")));
    }

    #[test]
    fn string_literals_become_globals() {
        let p = compile(r#"void f() { print_str("hello"); }"#);
        assert!(p.globals.iter().any(|g| g.name == "__str0" && g.size == 6));
    }

    #[test]
    fn pointer_difference_is_scaled() {
        let p = compile("long f(int *a, int *b) { return a - b; }");
        let f = p.function("f").unwrap();
        assert!(f
            .body
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn short_circuit_operators_produce_branches() {
        let p = compile(
            "struct node { int v; struct node *next; };
             int f(struct node *p) { return p != NULL && p->v > 0; }",
        );
        let f = p.function("f").unwrap();
        let branches = f
            .body
            .iter()
            .filter(|i| matches!(i, Instr::Branch { .. }))
            .count();
        assert!(branches >= 1);
    }

    #[test]
    fn calls_check_arity_and_unknown_functions() {
        let unit = parse("void f() { g(1); }").unwrap();
        assert!(lower(&unit, 1).is_err());
        let unit = parse("void g(int a, int b) {} void f() { g(1); }").unwrap();
        assert!(lower(&unit, 1).is_err());
    }

    #[test]
    fn break_and_continue_outside_loops_are_errors() {
        let unit = parse("void f() { break; }").unwrap();
        assert!(lower(&unit, 1).is_err());
        let unit = parse("void f() { continue; }").unwrap();
        assert!(lower(&unit, 1).is_err());
    }

    #[test]
    fn bitwise_and_shift_operators_reject_float_operands() {
        for expr in ["x << 2", "x >> 1", "x & 3", "x | 3", "x ^ 3", "2 << x"] {
            let src = format!("int f(float x) {{ return (int)({expr}); }}");
            let unit = parse(&src).unwrap();
            let err = lower(&unit, 1).expect_err(&format!("`{expr}` must not lower"));
            assert!(
                err.to_string().contains("integer operands"),
                "unexpected message for `{expr}`: {err}"
            );
        }
        // Integer operands are still fine, and so are the logical
        // operators, which short-circuit over truthiness instead.
        for src in [
            "int f(int x) { return (x << 2) | (x & 3) ^ (x >> 1); }",
            "int f(float x) { return x && 1.5 || !x; }",
        ] {
            let unit = parse(src).unwrap();
            assert!(lower(&unit, 1).is_ok(), "`{src}` must lower");
        }
    }

    #[test]
    fn globals_are_lowered_with_sizes() {
        let p = compile(
            "struct S { int a[3]; char *s; };
             S pool[8];
             int counter = 7;
             double ratio = 2.5;",
        );
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].size, 8 * 24);
        assert_eq!(p.globals[1].init.as_deref(), Some(&7i32.to_le_bytes()[..]));
        assert_eq!(p.globals[2].size, 8);
    }

    #[test]
    fn program_display_renders_ir() {
        let p = compile("int f(int x) { return x + 1; }");
        let text = p.to_string();
        assert!(text.contains("fn f(x: int) -> int"));
        assert!(text.contains("Return"));
    }

    #[test]
    fn conditional_expression_produces_single_result_slot() {
        let p = compile("int f(int a) { return a > 0 ? a : -a; }");
        let f = p.function("f").unwrap();
        assert!(f.body.iter().any(|i| matches!(i, Instr::Branch { .. })));
    }

    #[test]
    fn cma_allocations_are_recognised() {
        let p = compile(
            "struct BLK_HDR { int magic; int size; };
             void f() { struct BLK_HDR *h = (struct BLK_HDR *)xmalloc(64); }",
        );
        let f = p.function("f").unwrap();
        assert!(f.body.iter().any(|i| matches!(
            i,
            Instr::CallBuiltin { builtin: Builtin::CmaAlloc, alloc_ty: Some(t), .. }
                if *t == Type::struct_("BLK_HDR")
        )));
    }
}
