//! The Mini-C/C++ abstract syntax tree.
//!
//! The AST is deliberately close to the C surface syntax: types are written
//! with declarators, expressions carry no type annotations (semantic
//! analysis adds those during lowering), and the handful of C++ features
//! the evaluation needs (classes, single/multiple inheritance, `new` /
//! `delete`, C++-style casts written as ordinary casts) appear as small
//! extensions.

use effective_types::Type;

use crate::token::Loc;

/// A full translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Unit {
    /// Record (struct/class/union) definitions, in order.
    pub records: Vec<RecordDecl>,
    /// Global variable definitions.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<FunctionDecl>,
}

/// struct / class / union in the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKeyword {
    /// `struct`
    Struct,
    /// `class`
    Class,
    /// `union`
    Union,
}

/// A record definition.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordDecl {
    /// Which keyword introduced it.
    pub keyword: RecordKeyword,
    /// The tag.
    pub name: String,
    /// Base classes (classes only).
    pub bases: Vec<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Whether the record declares virtual methods.
    pub has_virtual: bool,
    /// Source location.
    pub loc: Loc,
}

/// A single field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Field type (already resolved to an `effective_types::Type`).
    pub ty: Type,
    /// Source location.
    pub loc: Loc,
}

/// A global variable definition.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: Type,
    /// Optional constant initialiser.
    pub init: Option<Expr>,
    /// Source location.
    pub loc: Loc,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub loc: Loc,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Source location.
    pub loc: Loc,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A local variable declaration with optional initialiser.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initialiser expression.
        init: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// `if (cond) then else`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init statement (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition (absent means `true`).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `return expr;`
    Return(Option<Expr>, Loc),
    /// `break;`
    Break(Loc),
    /// `continue;`
    Continue(Loc),
    /// A nested block.
    Block(Vec<Stmt>),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// How a cast was written in the source.  EffectiveSan-type instruments
/// cast sites; the distinction lets reports mirror the paper's taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastStyle {
    /// A C-style cast `(T)e`.
    CStyle,
    /// C++ `static_cast<T>(e)` (also used for implicit derived→base).
    Static,
    /// C++ `reinterpret_cast<T>(e)`.
    Reinterpret,
    /// C++ `dynamic_cast<T>(e)` — checked downcast.
    Dynamic,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Loc),
    /// Floating-point literal.
    FloatLit(f64, Loc),
    /// String literal (lowered to a global char array).
    StrLit(String, Loc),
    /// `NULL` / `nullptr`.
    Null(Loc),
    /// A variable reference.
    Var(String, Loc),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Assignment `lhs = rhs` (also `+=`, `-=` desugared by the parser).
    Assign {
        /// Assignment target (an lvalue expression).
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Pre/post increment/decrement, desugared to `x = x ± 1` by the
    /// parser; never appears after parsing.
    Index {
        /// Base expression (array or pointer).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Member access `base.field` or `base->field`.
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// True for `->`.
        arrow: bool,
        /// Source location.
        loc: Loc,
    },
    /// Pointer dereference `*ptr`.
    Deref(Box<Expr>, Loc),
    /// Address-of `&lvalue`.
    AddrOf(Box<Expr>, Loc),
    /// A cast `(T)expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// How the cast was written.
        style: CastStyle,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// A function call `f(args...)`; also used for builtin calls
    /// (`malloc`, `free`, `memcpy`, `print`, …).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// `sizeof(T)`.
    SizeOf(Type, Loc),
    /// `new T` / `new T[count]`.
    New {
        /// Element type.
        ty: Type,
        /// Element count (absent for scalar `new`).
        count: Option<Box<Expr>>,
        /// Source location.
        loc: Loc,
    },
    /// `delete p` / `delete[] p`.
    Delete {
        /// Pointer operand.
        expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Conditional expression `cond ? a : b`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
}

impl Expr {
    /// The source location of the expression.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::IntLit(_, l)
            | Expr::FloatLit(_, l)
            | Expr::StrLit(_, l)
            | Expr::Null(l)
            | Expr::Var(_, l)
            | Expr::Deref(_, l)
            | Expr::AddrOf(_, l)
            | Expr::SizeOf(_, l) => *l,
            Expr::Binary { loc, .. }
            | Expr::Unary { loc, .. }
            | Expr::Assign { loc, .. }
            | Expr::Index { loc, .. }
            | Expr::Member { loc, .. }
            | Expr::Cast { loc, .. }
            | Expr::Call { loc, .. }
            | Expr::New { loc, .. }
            | Expr::Delete { loc, .. }
            | Expr::Conditional { loc, .. } => *loc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_locations_are_preserved() {
        let l = Loc::new(4, 2);
        assert_eq!(Expr::IntLit(1, l).loc(), l);
        assert_eq!(
            Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::IntLit(1, l)),
                rhs: Box::new(Expr::IntLit(2, l)),
                loc: Loc::new(9, 9),
            }
            .loc(),
            Loc::new(9, 9)
        );
    }
}
