//! The typed intermediate representation.
//!
//! The IR plays the role of the "type annotated LLVM IR" the paper's
//! modified clang front-end produces (§6): a flat list of instructions per
//! function, with virtual-register *slots*, explicit memory operations, and
//! a static type annotation on every instruction that touches memory or
//! produces a pointer.  The instrumentation pass (crate `instrument`)
//! rewrites this IR by inserting the check instructions
//! ([`Instr::TypeCheck`], [`Instr::BoundsCheck`], …), which the VM then
//! dispatches to the EffectiveSan runtime (crate `effective-runtime`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use effective_types::{Type, TypeId, TypeRegistry};

use crate::ast::{BinOp, UnOp};

/// A virtual-register / local-slot index within a function frame.
pub type Slot = u32;

/// A compile-time constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Const {
    /// An integer (also used for booleans and characters).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// The null pointer.
    Null,
}

/// How a cast converts its operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastKind {
    /// Pointer-to-pointer reinterpretation (no value change).
    Bit,
    /// Numeric conversion (int↔float, truncation, extension).
    Numeric,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer.
    IntToPtr,
}

/// Built-in functions recognised by the compiler and executed directly by
/// the VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `malloc(size)` — typed via allocation-type inference (Example 1).
    Malloc,
    /// `calloc(n, size)` — zeroed allocation.
    Calloc,
    /// `realloc(p, size)`.
    Realloc,
    /// `free(p)`.
    Free,
    /// C++ `new T` / `new T[n]`.
    New,
    /// C++ `delete p` / `delete[] p`.
    Delete,
    /// `memcpy(dst, src, n)`.
    Memcpy,
    /// `memmove(dst, src, n)`.
    Memmove,
    /// `memset(p, byte, n)`.
    Memset,
    /// `strlen`-alike used by string workloads.
    Strlen,
    /// A custom-memory-allocator allocation: returns *legacy* (non-low-fat)
    /// memory, exercising the uninstrumented-code compatibility path.
    CmaAlloc,
    /// Free for [`Builtin::CmaAlloc`] memory (a no-op at the allocator
    /// level; kept for symmetry).
    CmaFree,
    /// Print an integer (harness output).
    PrintInt,
    /// Print a float (harness output).
    PrintFloat,
    /// Print a string constant (harness output).
    PrintStr,
    /// Pseudo-random number generator (deterministic, per-VM seed).
    Rand,
    /// Abort execution.
    Abort,
}

impl Builtin {
    /// Resolve a source-level callee name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "malloc" => Builtin::Malloc,
            "calloc" => Builtin::Calloc,
            "realloc" => Builtin::Realloc,
            "free" => Builtin::Free,
            "memcpy" => Builtin::Memcpy,
            "memmove" => Builtin::Memmove,
            "memset" => Builtin::Memset,
            "strlen" => Builtin::Strlen,
            "cma_alloc" | "xmalloc" | "pool_alloc" | "arena_alloc" => Builtin::CmaAlloc,
            "cma_free" | "xfree" | "pool_free" | "arena_free" => Builtin::CmaFree,
            "print_int" | "printf_int" => Builtin::PrintInt,
            "print_float" => Builtin::PrintFloat,
            "print_str" | "puts" => Builtin::PrintStr,
            "rand" | "random" => Builtin::Rand,
            "abort" | "exit" => Builtin::Abort,
            _ => return None,
        })
    }

    /// Does this builtin allocate memory whose type must be inferred?
    pub fn is_allocation(self) -> bool {
        matches!(
            self,
            Builtin::Malloc | Builtin::Calloc | Builtin::Realloc | Builtin::New | Builtin::CmaAlloc
        )
    }

    /// How many leading arguments are pointers into the simulated address
    /// space.  `memset(dst, byte, n)`'s second argument is the fill byte and
    /// `realloc(ptr, size)`'s second argument is a size — neither is a
    /// pointer, so instrumentation must not guard (or track) them as such.
    pub fn pointer_args(self) -> usize {
        match self {
            Builtin::Memcpy | Builtin::Memmove => 2,
            Builtin::Memset
            | Builtin::Strlen
            | Builtin::Free
            | Builtin::Delete
            | Builtin::Realloc
            | Builtin::CmaFree => 1,
            _ => 0,
        }
    }
}

/// One IR instruction.
///
/// Control flow uses absolute instruction indices within the owning
/// function's body (`Jump`/`Branch` targets).
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `dst = constant`
    Const {
        /// Destination slot.
        dst: Slot,
        /// The constant value.
        value: Const,
    },
    /// `dst = src`
    Copy {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Destination slot.
        dst: Slot,
        /// Operator (never a short-circuit logical operator; those are
        /// lowered to control flow).
        op: BinOp,
        /// Left operand.
        lhs: Slot,
        /// Right operand.
        rhs: Slot,
        /// Operate on floats rather than integers/pointers.
        float: bool,
    },
    /// `dst = op src`
    Un {
        /// Destination slot.
        dst: Slot,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Slot,
        /// Operate on floats.
        float: bool,
    },
    /// Allocate a stack object of `count` elements of `ty`; `dst` receives
    /// the pointer.  Lowered from address-taken locals and local aggregates.
    Alloca {
        /// Destination slot (pointer to the new object).
        dst: Slot,
        /// Element type.
        ty: Type,
        /// Number of elements.
        count: u64,
    },
    /// `dst = &global`
    GlobalAddr {
        /// Destination slot.
        dst: Slot,
        /// Global name.
        name: String,
    },
    /// `dst = *(ty *)ptr`
    Load {
        /// Destination slot.
        dst: Slot,
        /// Pointer slot.
        ptr: Slot,
        /// Static type of the loaded value.
        ty: Type,
    },
    /// `*(ty *)ptr = src`
    Store {
        /// Pointer slot.
        ptr: Slot,
        /// Value to store.
        src: Slot,
        /// Static type of the stored value.
        ty: Type,
    },
    /// `dst = &base->field` (or `&base.field` via an alloca pointer).
    FieldAddr {
        /// Destination slot.
        dst: Slot,
        /// Base pointer slot.
        base: Slot,
        /// The record type containing the field.
        record: Type,
        /// Field name (for diagnostics).
        field: String,
        /// Byte offset of the field.
        offset: u64,
        /// The field's type.
        field_ty: Type,
        /// The field's size in bytes (used for bounds narrowing).
        field_size: u64,
    },
    /// `dst = base + index * elem_size` (pointer arithmetic / array
    /// indexing; the dynamic type is invariant, so bounds propagate).
    PtrAdd {
        /// Destination slot.
        dst: Slot,
        /// Base pointer slot.
        base: Slot,
        /// Index slot (signed element count).
        index: Slot,
        /// Element size in bytes.
        elem_size: u64,
        /// Element type (the static pointee).
        elem_ty: Type,
    },
    /// A cast.
    Cast {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Conversion kind.
        kind: CastKind,
        /// Source static type.
        from_ty: Type,
        /// Destination static type.
        to_ty: Type,
        /// Whether the cast was written explicitly in the source (explicit
        /// casts are the instrumentation points of EffectiveSan-type).
        explicit: bool,
    },
    /// A call to a user-defined function.
    Call {
        /// Destination slot (absent for `void` calls).
        dst: Option<Slot>,
        /// Callee name.
        callee: String,
        /// Argument slots.
        args: Vec<Slot>,
        /// Static types of the arguments (parallel to `args`).
        arg_tys: Vec<Type>,
        /// Static return type.
        ret_ty: Type,
    },
    /// A call to a builtin.
    CallBuiltin {
        /// Destination slot.
        dst: Option<Slot>,
        /// The builtin.
        builtin: Builtin,
        /// Argument slots.
        args: Vec<Slot>,
        /// For allocation builtins: the inferred allocation (element) type
        /// (Example 1's "first lvalue usage" analysis).
        alloc_ty: Option<Type>,
        /// Static return type.
        ret_ty: Type,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch.
    Branch {
        /// Condition slot (non-zero = true).
        cond: Slot,
        /// Target when true.
        then_target: usize,
        /// Target when false.
        else_target: usize,
    },
    /// Return from the function.
    Return {
        /// Returned value slot, if any.
        value: Option<Slot>,
    },
    /// No operation (used by passes to delete instructions in place without
    /// renumbering jump targets).
    Nop,

    // ----- Instrumentation (inserted by the `instrument` crate) -----
    /// `dst = type_check(ptr, ty[])` — Fig. 3(a)–(d).
    TypeCheck {
        /// Destination bounds slot.
        dst: Slot,
        /// Checked pointer slot.
        ptr: Slot,
        /// The static (incomplete) type to check against.
        ty: Type,
        /// The same type, interned once at instrument time so the check
        /// hot path never hashes a structural [`Type`].
        ty_id: TypeId,
        /// Instrumentation-site label.
        loc: Arc<str>,
    },
    /// `dst = cast_check(ptr, ty[])` — the EffectiveSan-type variant's
    /// cast-site check (§6.2).
    CastCheck {
        /// Destination bounds slot.
        dst: Slot,
        /// Checked pointer slot.
        ptr: Slot,
        /// The cast target type.
        ty: Type,
        /// The same type, interned once at instrument time.
        ty_id: TypeId,
        /// Instrumentation-site label.
        loc: Arc<str>,
    },
    /// `dst = bounds_get(ptr)` — the EffectiveSan-bounds variant's
    /// allocation-bounds query (§6.2).
    BoundsGet {
        /// Destination bounds slot.
        dst: Slot,
        /// Pointer slot.
        ptr: Slot,
    },
    /// `dst = bounds_narrow(bounds, field_base .. field_base+size)` —
    /// Fig. 3(e).
    BoundsNarrow {
        /// Destination bounds slot.
        dst: Slot,
        /// Input bounds slot.
        bounds: Slot,
        /// Slot holding the field base pointer.
        field_base: Slot,
        /// Field size in bytes.
        size: u64,
    },
    /// `bounds_check(ptr, bounds)` before an access of `size` bytes —
    /// Fig. 3(g).
    BoundsCheck {
        /// Pointer slot.
        ptr: Slot,
        /// Bounds slot.
        bounds: Slot,
        /// Access size in bytes.
        size: u64,
        /// Whether this guards a pointer escape rather than a dereference.
        escape: bool,
        /// Instrumentation-site label.
        loc: Arc<str>,
    },
    /// `dst = WIDE_BOUNDS` — default bounds for pointers the pass has no
    /// information about.
    WideBounds {
        /// Destination bounds slot.
        dst: Slot,
    },
    /// A per-access check used by baseline sanitizers (AddressSanitizer's
    /// shadow-memory check, CETS's temporal check): validate an access of
    /// `size` bytes at `ptr` against the sanitizer's own meta data, with no
    /// propagated bounds.
    AccessCheck {
        /// Pointer slot.
        ptr: Slot,
        /// Access size in bytes.
        size: u64,
        /// Whether the access is a write.
        write: bool,
        /// Instrumentation-site label.
        loc: Arc<str>,
    },
}

impl Instr {
    /// The destination slot written by this instruction, if any.
    pub fn dst(&self) -> Option<Slot> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Alloca { dst, .. }
            | Instr::GlobalAddr { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::FieldAddr { dst, .. }
            | Instr::PtrAdd { dst, .. }
            | Instr::Cast { dst, .. }
            | Instr::TypeCheck { dst, .. }
            | Instr::CastCheck { dst, .. }
            | Instr::BoundsGet { dst, .. }
            | Instr::BoundsNarrow { dst, .. }
            | Instr::WideBounds { dst } => Some(*dst),
            Instr::Call { dst, .. } | Instr::CallBuiltin { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Is this one of the instrumentation instructions?
    pub fn is_check(&self) -> bool {
        matches!(
            self,
            Instr::TypeCheck { .. }
                | Instr::CastCheck { .. }
                | Instr::BoundsGet { .. }
                | Instr::BoundsNarrow { .. }
                | Instr::BoundsCheck { .. }
                | Instr::WideBounds { .. }
                | Instr::AccessCheck { .. }
        )
    }

    /// Is this a control-flow terminator or jump?
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. } | Instr::Branch { .. } | Instr::Return { .. }
        )
    }
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Static type.
    pub ty: Type,
    /// Slot the argument value arrives in.
    pub slot: Slot,
}

/// A lowered function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Number of slots in the frame (parameters + locals + temporaries).
    pub num_slots: usize,
    /// The instruction sequence.
    pub body: Vec<Instr>,
}

impl Function {
    /// Allocate a fresh slot (used by instrumentation passes).
    pub fn new_slot(&mut self) -> Slot {
        let s = self.num_slots as Slot;
        self.num_slots += 1;
        s
    }

    /// Count instructions, excluding `Nop`s.
    pub fn instruction_count(&self) -> usize {
        self.body
            .iter()
            .filter(|i| !matches!(i, Instr::Nop))
            .count()
    }

    /// Count instrumentation (check) instructions.
    pub fn check_count(&self) -> usize {
        self.body.iter().filter(|i| i.is_check()).count()
    }
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Global name.
    pub name: String,
    /// Type of the global object.
    pub ty: Type,
    /// Size in bytes.
    pub size: u64,
    /// Optional initial bytes (zero-filled when absent or shorter than
    /// `size`).
    pub init: Option<Vec<u8>>,
}

/// A lowered program (translation unit).
///
/// Functions are stored behind [`Arc`] so an interpreter can resolve a
/// callee with a reference-count bump instead of deep-cloning the body on
/// every call; instrumentation passes rewrite in place via
/// [`Arc::make_mut`].
#[derive(Clone, Debug)]
pub struct Program {
    /// The type registry collected from record definitions.
    pub registry: Arc<TypeRegistry>,
    /// Global variables (including materialised string literals).
    pub globals: Vec<Global>,
    /// Functions by name.
    pub functions: HashMap<String, Arc<Function>>,
    /// Number of source lines the program was compiled from (the
    /// `kilo-sLOC` column of Figure 7).
    pub source_lines: usize,
}

impl Program {
    /// Look up a function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name).map(|f| f.as_ref())
    }

    /// Total instruction count across all functions (excluding `Nop`s).
    pub fn instruction_count(&self) -> usize {
        self.functions.values().map(|f| f.instruction_count()).sum()
    }

    /// Total check-instruction count across all functions.
    pub fn check_count(&self) -> usize {
        self.functions.values().map(|f| f.check_count()).sum()
    }

    /// Every type the program can hand to the runtime — allocation element
    /// types (`Alloca`, allocation builtins, globals) and the static types
    /// of check instructions — in a deterministic order, deduplicated
    /// across both lists (a type that is both an allocation and a check
    /// type appears only in `alloc`).
    ///
    /// Used to pre-intern type meta data at load time
    /// (`Sanitizer::preload_types`), so the check hot path never pays a
    /// first-touch layout build.  Allocation and check types are kept
    /// apart because only the former get layout tables built; the latter
    /// are interned as layout-table keys only.  Determinism matters:
    /// `META` ids are assigned in this order, and
    /// parallel/sequential/sharded runs of the same program must produce
    /// identical simulated memory.
    pub fn referenced_types(&self) -> ReferencedTypes {
        let mut seen = std::collections::HashSet::new();
        let mut alloc = Vec::new();
        let mut checks = Vec::new();
        let mut add = |out: &mut Vec<Type>, ty: &Type| {
            if seen.insert(ty.clone()) {
                out.push(ty.clone());
            }
        };
        for g in &self.globals {
            add(&mut alloc, &g.ty);
        }
        let mut names: Vec<&String> = self.functions.keys().collect();
        names.sort();
        for name in &names {
            for instr in &self.functions[*name].body {
                match instr {
                    Instr::Alloca { ty, .. } => add(&mut alloc, ty),
                    Instr::CallBuiltin {
                        alloc_ty: Some(ty), ..
                    } => add(&mut alloc, ty),
                    _ => {}
                }
            }
        }
        for name in &names {
            for instr in &self.functions[*name].body {
                match instr {
                    Instr::TypeCheck { ty, .. } | Instr::CastCheck { ty, .. } => {
                        add(&mut checks, ty)
                    }
                    _ => {}
                }
            }
        }
        ReferencedTypes { alloc, checks }
    }
}

/// The types a program references, split by role (see
/// [`Program::referenced_types`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReferencedTypes {
    /// Allocation element types: globals, `Alloca`, allocation builtins.
    /// These can label memory and need layout tables.
    pub alloc: Vec<Type>,
    /// Static types of check instructions that never occur as allocation
    /// types: pure layout-table keys, interned but with no table of their
    /// own.
    pub checks: Vec<Type>,
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} : {} ({} bytes)", g.name, g.ty, g.size)?;
        }
        let mut names: Vec<_> = self.functions.keys().collect();
        names.sort();
        for name in names {
            let func = &self.functions[name];
            write!(f, "fn {}(", func.name)?;
            for (i, p) in func.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", p.name, p.ty)?;
            }
            writeln!(f, ") -> {} {{", func.ret)?;
            for (i, instr) in func.body.iter().enumerate() {
                writeln!(f, "  {i:4}: {instr:?}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_name_resolution() {
        assert_eq!(Builtin::from_name("malloc"), Some(Builtin::Malloc));
        assert_eq!(Builtin::from_name("xmalloc"), Some(Builtin::CmaAlloc));
        assert_eq!(Builtin::from_name("print_int"), Some(Builtin::PrintInt));
        assert_eq!(Builtin::from_name("not_a_builtin"), None);
        assert!(Builtin::Malloc.is_allocation());
        assert!(Builtin::CmaAlloc.is_allocation());
        assert!(!Builtin::Free.is_allocation());
    }

    #[test]
    fn instr_dst_and_classification() {
        let i = Instr::Const {
            dst: 3,
            value: Const::Int(1),
        };
        assert_eq!(i.dst(), Some(3));
        assert!(!i.is_check());
        assert!(!i.is_terminator());
        let t = Instr::TypeCheck {
            dst: 1,
            ptr: 0,
            ty: Type::int(),
            ty_id: TypeId::UNTYPED,
            loc: Arc::from("x"),
        };
        assert!(t.is_check());
        assert!(Instr::Return { value: None }.is_terminator());
        assert_eq!(Instr::Nop.dst(), None);
    }

    #[test]
    fn referenced_types_are_deterministic_and_deduped() {
        let mut functions = HashMap::new();
        functions.insert(
            "b".to_string(),
            Arc::new(Function {
                name: "b".to_string(),
                params: vec![],
                ret: Type::void(),
                num_slots: 2,
                body: vec![
                    Instr::Alloca {
                        dst: 0,
                        ty: Type::int(),
                        count: 1,
                    },
                    Instr::TypeCheck {
                        dst: 1,
                        ptr: 0,
                        ty: Type::struct_("S"),
                        ty_id: TypeId::UNTYPED,
                        loc: Arc::from("b:1"),
                    },
                ],
            }),
        );
        functions.insert(
            "a".to_string(),
            Arc::new(Function {
                name: "a".to_string(),
                params: vec![],
                ret: Type::void(),
                num_slots: 2,
                body: vec![
                    Instr::Alloca {
                        dst: 0,
                        ty: Type::struct_("S"),
                        count: 1,
                    },
                    Instr::CastCheck {
                        dst: 1,
                        ptr: 0,
                        ty: Type::double(),
                        ty_id: TypeId::UNTYPED,
                        loc: Arc::from("a:1"),
                    },
                ],
            }),
        );
        let program = Program {
            registry: Arc::new(TypeRegistry::new()),
            globals: vec![Global {
                name: "g".to_string(),
                ty: Type::array(Type::float(), 4),
                size: 16,
                init: None,
            }],
            functions,
            source_lines: 0,
        };
        let tys = program.referenced_types();
        // Allocation types: globals first, then functions in sorted-name
        // order; no duplicates.
        assert_eq!(
            tys.alloc,
            vec![
                Type::array(Type::float(), 4),
                Type::struct_("S"),
                Type::int(),
            ]
        );
        // Check static types that also occur as allocation types stay in
        // the alloc list only; `double` is check-only.
        assert_eq!(tys.checks, vec![Type::double()]);
        // HashMap iteration order never leaks: repeated calls agree.
        assert_eq!(program.referenced_types(), tys);
    }

    #[test]
    fn function_slot_allocation_and_counts() {
        let mut f = Function {
            name: "f".to_string(),
            params: vec![],
            ret: Type::void(),
            num_slots: 2,
            body: vec![
                Instr::Const {
                    dst: 0,
                    value: Const::Int(0),
                },
                Instr::Nop,
                Instr::Return { value: None },
            ],
        };
        assert_eq!(f.new_slot(), 2);
        assert_eq!(f.num_slots, 3);
        assert_eq!(f.instruction_count(), 2);
        assert_eq!(f.check_count(), 0);
    }
}
