//! Recursive-descent parser for Mini-C/C++.
//!
//! The parser resolves type syntax straight to [`effective_types::Type`]
//! values and keeps a table of record tags so that, as in C++, a defined
//! record can be named without the `struct`/`class`/`union` keyword.

use std::collections::HashMap;

use effective_types::Type;

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword, Loc, Punct, Token, TokenKind};

/// Parse a full translation unit from source text.
pub fn parse(source: &str) -> Result<Unit, CompileError> {
    let tokens = lex(source)?;
    Parser::new(tokens).parse_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Known record tags → the keyword they were introduced with.
    record_tags: HashMap<String, RecordKeyword>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            record_tags: HashMap::new(),
        }
    }

    // ---------------------------------------------------------------
    // Token helpers
    // ---------------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn loc(&self) -> Loc {
        self.tokens[self.pos].loc
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(ErrorKind::Parse, msg, self.loc())
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p:?}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // ---------------------------------------------------------------
    // Types
    // ---------------------------------------------------------------

    /// Does the current token begin a type?
    fn starts_type(&self) -> bool {
        match self.peek() {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Const
                    | Keyword::Struct
                    | Keyword::Class
                    | Keyword::Union
                    | Keyword::Enum
            ),
            TokenKind::Ident(name) => self.record_tags.contains_key(name),
            _ => false,
        }
    }

    /// Parse a type: base type followed by any number of `*`s.
    /// Array declarators are handled by the callers that need them.
    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let mut ty = self.parse_base_type()?;
        while self.eat_punct(Punct::Star) {
            ty = Type::ptr(ty);
            // `const` after `*` is accepted and ignored (qualifier-free
            // dynamic types).
            self.eat_keyword(Keyword::Const);
        }
        // C++ references are treated as pointers (§6 "Limitations").
        if self.eat_punct(Punct::Amp) {
            ty = Type::ptr(ty);
        }
        Ok(ty)
    }

    fn parse_base_type(&mut self) -> Result<Type, CompileError> {
        self.eat_keyword(Keyword::Const);
        self.eat_keyword(Keyword::Static);
        // `unsigned`/`signed` prefixes: the sign does not affect layout, so
        // they simply qualify the following integer keyword (or mean `int`).
        let mut saw_sign = false;
        while matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Unsigned) | TokenKind::Keyword(Keyword::Signed)
        ) {
            self.bump();
            saw_sign = true;
        }
        let ty = match self.peek().clone() {
            TokenKind::Keyword(Keyword::Void) => {
                self.bump();
                Type::void()
            }
            TokenKind::Keyword(Keyword::Bool) => {
                self.bump();
                Type::bool_()
            }
            TokenKind::Keyword(Keyword::Char) => {
                self.bump();
                Type::char_()
            }
            TokenKind::Keyword(Keyword::Short) => {
                self.bump();
                self.eat_keyword(Keyword::Int);
                Type::short()
            }
            TokenKind::Keyword(Keyword::Int) => {
                self.bump();
                Type::int()
            }
            TokenKind::Keyword(Keyword::Long) => {
                self.bump();
                if self.eat_keyword(Keyword::Long) {
                    self.eat_keyword(Keyword::Int);
                    Type::long_long()
                } else if self.eat_keyword(Keyword::Double) {
                    Type::long_double()
                } else {
                    self.eat_keyword(Keyword::Int);
                    Type::long()
                }
            }
            TokenKind::Keyword(Keyword::Float) => {
                self.bump();
                Type::float()
            }
            TokenKind::Keyword(Keyword::Double) => {
                self.bump();
                Type::double()
            }
            TokenKind::Keyword(Keyword::Struct) => {
                self.bump();
                let name = self.expect_ident()?;
                self.record_tags
                    .entry(name.clone())
                    .or_insert(RecordKeyword::Struct);
                Type::struct_(name)
            }
            TokenKind::Keyword(Keyword::Class) => {
                self.bump();
                let name = self.expect_ident()?;
                self.record_tags
                    .entry(name.clone())
                    .or_insert(RecordKeyword::Class);
                Type::class(name)
            }
            TokenKind::Keyword(Keyword::Union) => {
                self.bump();
                let name = self.expect_ident()?;
                self.record_tags
                    .entry(name.clone())
                    .or_insert(RecordKeyword::Union);
                Type::union_(name)
            }
            TokenKind::Keyword(Keyword::Enum) => {
                self.bump();
                let name = self.expect_ident()?;
                Type::enum_(name)
            }
            TokenKind::Ident(name) if self.record_tags.contains_key(&name) => {
                self.bump();
                match self.record_tags[&name] {
                    RecordKeyword::Struct => Type::struct_(name),
                    RecordKeyword::Class => Type::class(name),
                    RecordKeyword::Union => Type::union_(name),
                }
            }
            _ if saw_sign => Type::int(),
            other => return Err(self.error(format!("expected a type, found {other}"))),
        };
        self.eat_keyword(Keyword::Const);
        Ok(ty)
    }

    /// Parse trailing array declarators `[N]`, `[N][M]`, or `[]` (flexible
    /// array member), wrapping `ty` from the outside in.
    fn parse_array_suffix(&mut self, ty: Type) -> Result<Type, CompileError> {
        let mut dims = Vec::new();
        let mut fam = false;
        while self.eat_punct(Punct::LBracket) {
            if self.eat_punct(Punct::RBracket) {
                fam = true;
                break;
            }
            let n = match self.bump() {
                TokenKind::Int(v) if v >= 0 => v as u64,
                other => return Err(self.error(format!("expected array length, found {other}"))),
            };
            self.expect_punct(Punct::RBracket)?;
            dims.push(n);
        }
        let mut result = ty;
        for &n in dims.iter().rev() {
            result = Type::array(result, n);
        }
        if fam {
            result = Type::incomplete_array(result);
        }
        Ok(result)
    }

    // ---------------------------------------------------------------
    // Top level
    // ---------------------------------------------------------------

    fn parse_unit(mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while *self.peek() != TokenKind::Eof {
            match self.peek() {
                TokenKind::Keyword(Keyword::Struct)
                | TokenKind::Keyword(Keyword::Class)
                | TokenKind::Keyword(Keyword::Union)
                    if self.is_record_definition() =>
                {
                    unit.records.push(self.parse_record()?);
                }
                _ => self.parse_global_or_function(&mut unit)?,
            }
        }
        Ok(unit)
    }

    /// Distinguish `struct S { ... };` / `struct S;` (definitions) from
    /// `struct S x;` / `struct S *f() {...}` (uses in declarations).
    fn is_record_definition(&self) -> bool {
        matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(
                self.peek_at(2),
                TokenKind::Punct(Punct::LBrace)
                    | TokenKind::Punct(Punct::Colon)
                    | TokenKind::Punct(Punct::Semi)
            )
    }

    fn parse_record(&mut self) -> Result<RecordDecl, CompileError> {
        let loc = self.loc();
        let keyword = match self.bump() {
            TokenKind::Keyword(Keyword::Struct) => RecordKeyword::Struct,
            TokenKind::Keyword(Keyword::Class) => RecordKeyword::Class,
            TokenKind::Keyword(Keyword::Union) => RecordKeyword::Union,
            other => return Err(self.error(format!("expected record keyword, found {other}"))),
        };
        let name = self.expect_ident()?;
        self.record_tags.insert(name.clone(), keyword);

        // Forward declaration.
        if self.eat_punct(Punct::Semi) {
            return Ok(RecordDecl {
                keyword,
                name,
                bases: Vec::new(),
                fields: Vec::new(),
                has_virtual: false,
                loc,
            });
        }

        // Base classes: `: public Base1, public Base2`.
        let mut bases = Vec::new();
        if self.eat_punct(Punct::Colon) {
            loop {
                self.eat_keyword(Keyword::Public);
                self.eat_keyword(Keyword::Virtual);
                bases.push(self.expect_ident()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }

        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        let mut has_virtual = false;
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Keyword(Keyword::Public) {
                // `public:` access specifier — skip.
                self.bump();
                self.expect_punct(Punct::Colon)?;
                continue;
            }
            if *self.peek() == TokenKind::Keyword(Keyword::Virtual) {
                // A virtual method declaration: mark the class polymorphic
                // and skip to the `;`.
                has_virtual = true;
                while *self.peek() != TokenKind::Punct(Punct::Semi)
                    && *self.peek() != TokenKind::Eof
                {
                    self.bump();
                }
                self.expect_punct(Punct::Semi)?;
                continue;
            }
            let floc = self.loc();
            let base = self.parse_type()?;
            let fname = self.expect_ident()?;
            let ty = self.parse_array_suffix(base.clone())?;
            fields.push(FieldDecl {
                name: fname,
                ty,
                loc: floc,
            });
            // Additional declarators: `int a, b;`
            while self.eat_punct(Punct::Comma) {
                let floc = self.loc();
                let mut ty = base.clone();
                while self.eat_punct(Punct::Star) {
                    ty = Type::ptr(ty);
                }
                let fname = self.expect_ident()?;
                let ty = self.parse_array_suffix(ty)?;
                fields.push(FieldDecl {
                    name: fname,
                    ty,
                    loc: floc,
                });
            }
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::Semi)?;
        Ok(RecordDecl {
            keyword,
            name,
            bases,
            fields,
            has_virtual,
            loc,
        })
    }

    fn parse_global_or_function(&mut self, unit: &mut Unit) -> Result<(), CompileError> {
        let loc = self.loc();
        let base = self.parse_type()?;
        let name = self.expect_ident()?;
        if *self.peek() == TokenKind::Punct(Punct::LParen) {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if !self.eat_punct(Punct::RParen) {
                loop {
                    let ploc = self.loc();
                    if *self.peek() == TokenKind::Keyword(Keyword::Void)
                        && *self.peek_at(1) == TokenKind::Punct(Punct::RParen)
                    {
                        self.bump();
                        break;
                    }
                    let pty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    let pty = self.parse_array_suffix(pty)?;
                    // Array parameters decay to pointers.
                    let pty = match pty {
                        Type::Array(..) | Type::IncompleteArray(_) => pty.decay(),
                        other => other,
                    };
                    params.push(ParamDecl {
                        name: pname,
                        ty: pty,
                        loc: ploc,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                // The loop above leaves the closing paren unconsumed unless
                // it hit the `(void)` case.
                self.eat_punct(Punct::RParen);
            }
            if self.eat_punct(Punct::Semi) {
                // Function prototype: record nothing (bodies are required
                // for called functions; prototypes are tolerated).
                return Ok(());
            }
            self.expect_punct(Punct::LBrace)?;
            let body = self.parse_block_body()?;
            unit.functions.push(FunctionDecl {
                name,
                ret: base,
                params,
                body,
                loc,
            });
        } else {
            // Global variable(s).
            let ty = self.parse_array_suffix(base.clone())?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            unit.globals.push(GlobalDecl {
                name,
                ty,
                init,
                loc,
            });
            while self.eat_punct(Punct::Comma) {
                let loc = self.loc();
                let mut ty = base.clone();
                while self.eat_punct(Punct::Star) {
                    ty = Type::ptr(ty);
                }
                let name = self.expect_ident()?;
                let ty = self.parse_array_suffix(ty)?;
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                unit.globals.push(GlobalDecl {
                    name,
                    ty,
                    init,
                    loc,
                });
            }
            self.expect_punct(Punct::Semi)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Statements
    // ---------------------------------------------------------------

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unexpected end of input inside a block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let loc = self.loc();
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_body = self.parse_stmt_as_block()?;
                let else_body = if self.eat_keyword(Keyword::Else) {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    loc,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body, loc })
            }
            TokenKind::Keyword(Keyword::Do) => {
                // do { body } while (cond);  — desugared to
                // { body; while (cond) body; } for simplicity.
                self.bump();
                let body = self.parse_stmt_as_block()?;
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.error("expected `while` after `do` body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                let mut stmts = body.clone();
                stmts.push(Stmt::While { cond, body, loc });
                Ok(Stmt::Block(stmts))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.parse_simple_decl_or_expr_stmt()?))
                };
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    loc,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(e)
                };
                Ok(Stmt::Return(value, loc))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break(loc))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue(loc))
            }
            TokenKind::Keyword(Keyword::Delete) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
            _ if self.starts_decl() => {
                let stmt = self.parse_simple_decl_or_expr_stmt()?;
                Ok(stmt)
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat_punct(Punct::LBrace) {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    /// Does the current position start a local declaration (rather than an
    /// expression)?  True when a type starts here and the token after the
    /// declarator head is an identifier.
    fn starts_decl(&self) -> bool {
        if !self.starts_type() {
            return false;
        }
        // Distinguish `S * p;` (decl) from `s * p` (multiplication): the
        // type table disambiguates because only known record tags and type
        // keywords count as type starts.
        true
    }

    /// Parse `T name = init;` or an expression statement (used by `for`
    /// init clauses and plain statements).
    fn parse_simple_decl_or_expr_stmt(&mut self) -> Result<Stmt, CompileError> {
        let loc = self.loc();
        if self.starts_decl() {
            let base = self.parse_type()?;
            let name = self.expect_ident()?;
            let ty = self.parse_array_suffix(base.clone())?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            if self.eat_punct(Punct::Comma) {
                // Multiple declarators become a block of declarations.
                let mut stmts = vec![Stmt::Decl {
                    name,
                    ty,
                    init,
                    loc,
                }];
                loop {
                    let loc = self.loc();
                    let mut ty = base.clone();
                    while self.eat_punct(Punct::Star) {
                        ty = Type::ptr(ty);
                    }
                    let name = self.expect_ident()?;
                    let ty = self.parse_array_suffix(ty)?;
                    let init = if self.eat_punct(Punct::Assign) {
                        Some(self.parse_expr()?)
                    } else {
                        None
                    };
                    stmts.push(Stmt::Decl {
                        name,
                        ty,
                        init,
                        loc,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                return Ok(Stmt::Block(stmts));
            }
            self.expect_punct(Punct::Semi)?;
            Ok(Stmt::Decl {
                name,
                ty,
                init,
                loc,
            })
        } else {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            Ok(Stmt::Expr(e))
        }
    }

    // ---------------------------------------------------------------
    // Expressions (precedence climbing)
    // ---------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_conditional()?;
        let loc = self.loc();
        match self.peek() {
            TokenKind::Punct(Punct::Assign) => {
                self.bump();
                let rhs = self.parse_assignment()?;
                Ok(Expr::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    loc,
                })
            }
            TokenKind::Punct(Punct::PlusAssign)
            | TokenKind::Punct(Punct::MinusAssign)
            | TokenKind::Punct(Punct::StarAssign)
            | TokenKind::Punct(Punct::SlashAssign) => {
                let op = match self.bump() {
                    TokenKind::Punct(Punct::PlusAssign) => BinOp::Add,
                    TokenKind::Punct(Punct::MinusAssign) => BinOp::Sub,
                    TokenKind::Punct(Punct::StarAssign) => BinOp::Mul,
                    _ => BinOp::Div,
                };
                let rhs = self.parse_assignment()?;
                Ok(Expr::Assign {
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        loc,
                    }),
                    loc,
                })
            }
            _ => Ok(lhs),
        }
    }

    fn parse_conditional(&mut self) -> Result<Expr, CompileError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let loc = cond.loc();
            let then_expr = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.parse_conditional()?;
            Ok(Expr::Conditional {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                loc,
            })
        } else {
            Ok(cond)
        }
    }

    fn binop_for(p: Punct) -> Option<(BinOp, u8)> {
        use BinOp::*;
        Some(match p {
            Punct::OrOr => (LogicalOr, 1),
            Punct::AndAnd => (LogicalAnd, 2),
            Punct::Pipe => (BitOr, 3),
            Punct::Caret => (BitXor, 4),
            Punct::Amp => (BitAnd, 5),
            Punct::Eq => (Eq, 6),
            Punct::Ne => (Ne, 6),
            Punct::Lt => (Lt, 7),
            Punct::Le => (Le, 7),
            Punct::Gt => (Gt, 7),
            Punct::Ge => (Ge, 7),
            Punct::Shl => (Shl, 8),
            Punct::Shr => (Shr, 8),
            Punct::Plus => (Add, 9),
            Punct::Minus => (Sub, 9),
            Punct::Star => (Mul, 10),
            Punct::Slash => (Div, 10),
            Punct::Percent => (Rem, 10),
            _ => return None,
        })
    }

    /// The binary operator at the cursor, if it binds at least as tightly
    /// as `min_prec`.
    fn peek_binop(&self, min_prec: u8) -> Option<(BinOp, u8)> {
        match self.peek() {
            TokenKind::Punct(p) => Self::binop_for(*p).filter(|&(_, prec)| prec >= min_prec),
            _ => None,
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.peek_binop(min_prec) {
            let loc = self.loc();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                loc,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.loc();
        match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.parse_unary()?),
                    loc,
                })
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.parse_unary()?),
                    loc,
                })
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    operand: Box::new(self.parse_unary()?),
                    loc,
                })
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.parse_unary()?), loc))
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.parse_unary()?), loc))
            }
            TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                // Pre-increment/decrement: ++x  ==>  x = x + 1
                let op = if self.bump() == TokenKind::Punct(Punct::PlusPlus) {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let target = self.parse_unary()?;
                Ok(Expr::Assign {
                    lhs: Box::new(target.clone()),
                    rhs: Box::new(Expr::Binary {
                        op,
                        lhs: Box::new(target),
                        rhs: Box::new(Expr::IntLit(1, loc)),
                        loc,
                    }),
                    loc,
                })
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let ty = self.parse_type()?;
                let ty = self.parse_array_suffix(ty)?;
                self.expect_punct(Punct::RParen)?;
                Ok(Expr::SizeOf(ty, loc))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let ty = self.parse_type()?;
                let count = if self.eat_punct(Punct::LBracket) {
                    let c = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    Some(Box::new(c))
                } else {
                    // `new T()` — empty constructor call.
                    if self.eat_punct(Punct::LParen) {
                        self.expect_punct(Punct::RParen)?;
                    }
                    None
                };
                Ok(Expr::New { ty, count, loc })
            }
            TokenKind::Keyword(Keyword::Delete) => {
                self.bump();
                // `delete[] p` — the `[]` is irrelevant to typing.
                if self.eat_punct(Punct::LBracket) {
                    self.expect_punct(Punct::RBracket)?;
                }
                let e = self.parse_unary()?;
                Ok(Expr::Delete {
                    expr: Box::new(e),
                    loc,
                })
            }
            TokenKind::Punct(Punct::LParen) if self.starts_type_after_lparen() => {
                // A C-style cast.
                self.bump();
                let ty = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.parse_unary()?;
                Ok(Expr::Cast {
                    ty,
                    style: CastStyle::CStyle,
                    expr: Box::new(operand),
                    loc,
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn starts_type_after_lparen(&self) -> bool {
        match self.peek_at(1) {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Struct
                    | Keyword::Class
                    | Keyword::Union
                    | Keyword::Const
            ),
            TokenKind::Ident(name) => {
                // `(S *)x` or `(S)x` — only when S names a record type AND
                // the token after is `*` or `)` (otherwise it's a
                // parenthesised expression).
                self.record_tags.contains_key(name)
                    && matches!(
                        self.peek_at(2),
                        TokenKind::Punct(Punct::Star) | TokenKind::Punct(Punct::RParen)
                    )
            }
            _ => false,
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.parse_primary()?;
        loop {
            let loc = self.loc();
            match self.peek().clone() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                        loc,
                    };
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    expr = Expr::Member {
                        base: Box::new(expr),
                        field,
                        arrow: false,
                        loc,
                    };
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    expr = Expr::Member {
                        base: Box::new(expr),
                        field,
                        arrow: true,
                        loc,
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    // Post-increment used as a statement: desugared to the
                    // same assignment as the pre-form (the value difference
                    // does not matter for the workloads, which use it in
                    // statement position).
                    let op = if self.bump() == TokenKind::Punct(Punct::PlusPlus) {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    expr = Expr::Assign {
                        lhs: Box::new(expr.clone()),
                        rhs: Box::new(Expr::Binary {
                            op,
                            lhs: Box::new(expr),
                            rhs: Box::new(Expr::IntLit(1, loc)),
                            loc,
                        }),
                        loc,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let loc = self.loc();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::IntLit(v, loc)),
            TokenKind::Float(v) => Ok(Expr::FloatLit(v, loc)),
            TokenKind::Char(v) => Ok(Expr::IntLit(v, loc)),
            TokenKind::Str(s) => Ok(Expr::StrLit(s, loc)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::IntLit(1, loc)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::IntLit(0, loc)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Null(loc)),
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                // C++ named casts: static_cast<T>(e) etc.
                if let Some(style) = match name.as_str() {
                    "static_cast" => Some(CastStyle::Static),
                    "reinterpret_cast" => Some(CastStyle::Reinterpret),
                    "dynamic_cast" => Some(CastStyle::Dynamic),
                    "const_cast" => Some(CastStyle::Static),
                    _ => None,
                } {
                    self.expect_punct(Punct::Lt)?;
                    let ty = self.parse_type()?;
                    self.expect_punct(Punct::Gt)?;
                    self.expect_punct(Punct::LParen)?;
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::Cast {
                        ty,
                        style,
                        expr: Box::new(e),
                        loc,
                    });
                }
                if *self.peek() == TokenKind::Punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        loc,
                    })
                } else {
                    Ok(Expr::Var(name, loc))
                }
            }
            other => Err(CompileError::new(
                ErrorKind::Parse,
                format!("unexpected token {other} in expression"),
                loc,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_struct_definition() {
        let unit = parse(
            "struct S { int a[3]; char *s; };
             struct T { float f; struct S t; };",
        )
        .unwrap();
        assert_eq!(unit.records.len(), 2);
        assert_eq!(unit.records[0].name, "S");
        assert_eq!(unit.records[0].fields[0].ty, Type::array(Type::int(), 3));
        assert_eq!(unit.records[0].fields[1].ty, Type::char_ptr());
        assert_eq!(unit.records[1].fields[1].ty, Type::struct_("S"));
    }

    #[test]
    fn parse_class_with_inheritance_and_virtual() {
        let unit = parse(
            "class Grammar { virtual int kind(); int g; };
             class SchemaGrammar : public Grammar { int extra; };",
        )
        .unwrap();
        assert!(unit.records[0].has_virtual);
        assert_eq!(unit.records[1].bases, vec!["Grammar".to_string()]);
        assert_eq!(unit.records[1].keyword, RecordKeyword::Class);
    }

    #[test]
    fn parse_union_and_fam() {
        let unit = parse(
            "union U { float a[10]; float b[20]; };
             struct Packet { int len; char data[]; };",
        )
        .unwrap();
        assert_eq!(unit.records[0].keyword, RecordKeyword::Union);
        assert_eq!(
            unit.records[1].fields[1].ty,
            Type::incomplete_array(Type::char_())
        );
    }

    #[test]
    fn parse_globals_and_functions() {
        let unit = parse(
            "struct S { int x; };
             S pool[8];
             int counter = 0;
             int sum(int *a, int len) {
                 int s = 0;
                 for (int i = 0; i < len; i++) { s += a[i]; }
                 return s;
             }",
        )
        .unwrap();
        assert_eq!(unit.globals.len(), 2);
        assert_eq!(unit.globals[0].ty, Type::array(Type::struct_("S"), 8));
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, Type::ptr(Type::int()));
        assert_eq!(f.ret, Type::int());
    }

    #[test]
    fn parse_linked_list_walk() {
        // The paper's Figure 4 `length` function.
        let unit = parse(
            "struct node { int value; struct node *next; };
             int length(struct node *xs) {
                 int len = 0;
                 while (xs != NULL) {
                     len++;
                     xs = xs->next;
                 }
                 return len;
             }",
        )
        .unwrap();
        assert_eq!(unit.functions[0].name, "length");
    }

    #[test]
    fn parse_casts() {
        let unit = parse(
            "struct S { int x; };
             struct T { int y; };
             void f() {
                 void *p = malloc(sizeof(struct S));
                 struct S *s = (struct S *)p;
                 struct T *t = (T *)p;
                 T *u = static_cast<T *>(p);
                 T *v = reinterpret_cast<T *>(s);
             }",
        )
        .unwrap();
        let body = &unit.functions[0].body;
        assert_eq!(body.len(), 5);
        // The bare-identifier cast `(T *)p` parses as a cast, not a
        // multiplication, because `T` is a known record tag.
        match &body[2] {
            Stmt::Decl {
                init: Some(Expr::Cast { ty, style, .. }),
                ..
            } => {
                assert_eq!(*ty, Type::ptr(Type::struct_("T")));
                assert_eq!(*style, CastStyle::CStyle);
            }
            other => panic!("expected cast initialiser, got {other:?}"),
        }
        match &body[3] {
            Stmt::Decl {
                init: Some(Expr::Cast { style, .. }),
                ..
            } => {
                assert_eq!(*style, CastStyle::Static);
            }
            other => panic!("expected static_cast, got {other:?}"),
        }
    }

    #[test]
    fn parse_new_delete() {
        let unit = parse(
            "class T { int x; };
             void f() {
                 T *q = new T;
                 T *s = new T[100];
                 delete q;
                 delete[] s;
             }",
        )
        .unwrap();
        let body = &unit.functions[0].body;
        assert!(matches!(
            body[0],
            Stmt::Decl {
                init: Some(Expr::New { count: None, .. }),
                ..
            }
        ));
        assert!(matches!(
            body[1],
            Stmt::Decl {
                init: Some(Expr::New { count: Some(_), .. }),
                ..
            }
        ));
    }

    #[test]
    fn parse_operator_precedence() {
        let unit = parse("int f(int a, int b) { return a + b * 2 < 10 && b != 0; }").unwrap();
        match &unit.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary { op, .. }), _) => {
                assert_eq!(*op, BinOp::LogicalAnd);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_compound_assignment_and_increment() {
        let unit = parse("void f() { int i = 0; i += 2; i++; ++i; i--; }").unwrap();
        assert_eq!(unit.functions[0].body.len(), 5);
    }

    #[test]
    fn parse_member_chains() {
        let unit = parse(
            "struct S { int a[3]; };
             struct T { struct S s; struct T *next; };
             int f(struct T *t) { return t->next->s.a[2]; }",
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 1);
    }

    #[test]
    fn parse_conditional_expression() {
        let unit = parse("int f(int a) { return a > 0 ? a : -a; }").unwrap();
        assert!(matches!(
            unit.functions[0].body[0],
            Stmt::Return(Some(Expr::Conditional { .. }), _)
        ));
    }

    #[test]
    fn parse_errors_are_reported_with_location() {
        let err = parse("int f( { }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.loc.line >= 1);
        assert!(parse("struct S { int x }").is_err()); // missing `;`
        assert!(parse("int f() { return }").is_err());
    }

    #[test]
    fn sizeof_of_types() {
        let unit = parse(
            "struct S { int x; };
             long f() { return sizeof(struct S) + sizeof(int) + sizeof(char *); }",
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 1);
    }
}
