//! Compilation errors.

use std::fmt;

use crate::token::Loc;

/// What stage produced the error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical error.
    Lex,
    /// Parse error.
    Parse,
    /// Semantic / type error found at compile time.
    Sema,
    /// Error while lowering to IR.
    Lower,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lex error"),
            ErrorKind::Parse => write!(f, "parse error"),
            ErrorKind::Sema => write!(f, "semantic error"),
            ErrorKind::Lower => write!(f, "lowering error"),
        }
    }
}

/// A compilation error with location information.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// Which stage failed.
    pub kind: ErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub loc: Loc,
}

impl CompileError {
    /// Construct an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>, loc: Loc) -> Self {
        CompileError {
            kind,
            message: message.into(),
            loc,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.loc, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_stage() {
        let e = CompileError::new(ErrorKind::Parse, "expected `;`", Loc::new(3, 7));
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
    }
}
