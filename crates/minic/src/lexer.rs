//! The Mini-C lexer.

use crate::error::{CompileError, ErrorKind};
use crate::token::{Keyword, Loc, Punct, Token, TokenKind};

/// Tokenise a full source string.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn loc(&self) -> Loc {
        Loc::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            kind: ErrorKind::Lex,
            message: msg.into(),
            loc: self.loc(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let _ = self.source;
        let mut tokens = Vec::new();
        loop {
            self.skip_whitespace_and_comments()?;
            let loc = self.loc();
            let Some(c) = self.peek() else {
                tokens.push(Token::new(TokenKind::Eof, loc));
                return Ok(tokens);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                self.lex_ident()
            } else if c.is_ascii_digit() {
                self.lex_number()?
            } else if c == '"' {
                self.lex_string()?
            } else if c == '\'' {
                self.lex_char()?
            } else {
                self.lex_punct()?
            };
            tokens.push(Token::new(kind, loc));
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                // Preprocessor-style lines are tolerated and skipped.
                Some('#') if self.col == 1 => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_ident(&s) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(s),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, CompileError> {
        let mut s = String::new();
        let mut is_float = false;
        // Hex literals.
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            let mut hex = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    hex.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let v = i64::from_str_radix(&hex, 16)
                .map_err(|_| self.error(format!("invalid hex literal 0x{hex}")))?;
            self.skip_int_suffix();
            return Ok(TokenKind::Int(v));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && !s.is_empty()
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == '-' || d == '+')
            {
                is_float = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('-') | Some('+')) {
                    s.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        if is_float || matches!(self.peek(), Some('f') | Some('F')) {
            if matches!(self.peek(), Some('f') | Some('F')) {
                self.bump();
            }
            let v: f64 = s
                .parse()
                .map_err(|_| self.error(format!("invalid float literal {s}")))?;
            Ok(TokenKind::Float(v))
        } else {
            self.skip_int_suffix();
            let v: i64 = s
                .parse()
                .map_err(|_| self.error(format!("invalid integer literal {s}")))?;
            Ok(TokenKind::Int(v))
        }
    }

    fn skip_int_suffix(&mut self) {
        while matches!(self.peek(), Some('u') | Some('U') | Some('l') | Some('L')) {
            self.bump();
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, CompileError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => s.push(self.escape()?),
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn lex_char(&mut self) -> Result<TokenKind, CompileError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some('\\') => self.escape()?,
            Some(c) => c,
            None => return Err(self.error("unterminated character literal")),
        };
        if self.bump() != Some('\'') {
            return Err(self.error("unterminated character literal"));
        }
        Ok(TokenKind::Char(c as i64))
    }

    fn escape(&mut self) -> Result<char, CompileError> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('t') => Ok('\t'),
            Some('r') => Ok('\r'),
            Some('0') => Ok('\0'),
            Some('\\') => Ok('\\'),
            Some('\'') => Ok('\''),
            Some('"') => Ok('"'),
            Some(c) => Err(self.error(format!("unknown escape sequence \\{c}"))),
            None => Err(self.error("unterminated escape sequence")),
        }
    }

    fn lex_punct(&mut self) -> Result<TokenKind, CompileError> {
        use Punct::*;
        let c = self.bump().expect("caller checked");
        let two = |lexer: &mut Self, next: char, with: Punct, without: Punct| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                with
            } else {
                without
            }
        };
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            ':' => Colon,
            '?' => Question,
            '.' => Dot,
            '~' => Tilde,
            '^' => Caret,
            '+' => {
                if self.peek() == Some('+') {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, '=', PlusAssign, Plus)
                }
            }
            '-' => {
                if self.peek() == Some('>') {
                    self.bump();
                    Arrow
                } else if self.peek() == Some('-') {
                    self.bump();
                    MinusMinus
                } else {
                    two(self, '=', MinusAssign, Minus)
                }
            }
            '*' => two(self, '=', StarAssign, Star),
            '/' => two(self, '=', SlashAssign, Slash),
            '%' => Percent,
            '&' => two(self, '&', AndAnd, Amp),
            '|' => two(self, '|', OrOr, Pipe),
            '!' => two(self, '=', Ne, Bang),
            '=' => two(self, '=', Eq, Assign),
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    Shl
                } else {
                    two(self, '=', Le, Lt)
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    Shr
                } else {
                    two(self, '=', Ge, Gt)
                }
            }
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_keywords_and_identifiers() {
        let ks = kinds("int foo struct S");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("foo".to_string()),
                TokenKind::Keyword(Keyword::Struct),
                TokenKind::Ident("S".to_string()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 0x1f 3.5 1e3 2.5e-2 7f"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Float(7.0),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("100ul")[0], TokenKind::Int(100));
    }

    #[test]
    fn lex_strings_and_chars() {
        assert_eq!(
            kinds(r#""hello\n" 'a' '\0'"#),
            vec![
                TokenKind::Str("hello\n".to_string()),
                TokenKind::Char('a' as i64),
                TokenKind::Char(0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        use Punct::*;
        assert_eq!(
            kinds("-> ++ -- == != <= >= && || << >> += -="),
            vec![
                TokenKind::Punct(Arrow),
                TokenKind::Punct(PlusPlus),
                TokenKind::Punct(MinusMinus),
                TokenKind::Punct(Eq),
                TokenKind::Punct(Ne),
                TokenKind::Punct(Le),
                TokenKind::Punct(Ge),
                TokenKind::Punct(AndAnd),
                TokenKind::Punct(OrOr),
                TokenKind::Punct(Shl),
                TokenKind::Punct(Shr),
                TokenKind::Punct(PlusAssign),
                TokenKind::Punct(MinusAssign),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_lines_are_skipped() {
        let src = "#include <stdio.h>\n// line comment\nint /* block */ x;";
        let ks = kinds(src);
        assert_eq!(ks.len(), 4); // int, x, ;, EOF
    }

    #[test]
    fn locations_are_tracked() {
        let toks = lex("int\n  x;").unwrap();
        assert_eq!(toks[0].loc, Loc::new(1, 1));
        assert_eq!(toks[1].loc, Loc::new(2, 3));
    }

    #[test]
    fn lex_errors_are_reported() {
        assert!(lex("int @").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
