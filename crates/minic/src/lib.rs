//! # minic
//!
//! A Mini-C/C++ front end and typed IR — the compilation substrate of this
//! EffectiveSan reproduction.
//!
//! The published EffectiveSan instruments C/C++ by modifying clang to emit
//! type-annotated LLVM IR and adding an LLVM instrumentation pass (§6).
//! Re-building that toolchain is out of scope for a Rust reproduction (see
//! `DESIGN.md`), so this crate provides the equivalent substrate:
//!
//! * a lexer, parser and AST for a C subset with the C++ extensions the
//!   evaluation needs (classes, single/multiple inheritance, virtual-method
//!   markers, `new`/`delete`, named casts);
//! * semantic analysis with the allocation-type inference of Example 1;
//! * a typed, flat IR ([`ir::Instr`]) carrying static type annotations on
//!   every pointer-producing instruction — exactly the information the
//!   Figure 3 instrumentation schema consumes;
//! * pre-declared slots for the instrumentation instructions
//!   (`TypeCheck`, `BoundsCheck`, …) inserted by the `instrument` crate and
//!   executed by the `vm` crate.
//!
//! ## Example
//!
//! ```
//! let program = minic::compile(
//!     "struct node { int value; struct node *next; };
//!      int length(struct node *xs) {
//!          int len = 0;
//!          while (xs != NULL) { len++; xs = xs->next; }
//!          return len;
//!      }",
//! )
//! .unwrap();
//! assert!(program.function("length").is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::{CompileError, ErrorKind};
pub use ir::{Builtin, CastKind, Const, Function, Global, Instr, Param, Program, Slot};

/// Compile Mini-C/C++ source text to a typed IR [`Program`].
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let unit = parser::parse(source)?;
    lower::lower(&unit, source.lines().count())
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_end_to_end() {
        let program = super::compile(
            "struct S { int a[3]; char *s; };
             int main() {
                 struct S *p = (struct S *)malloc(sizeof(struct S));
                 p->a[0] = 1;
                 free(p);
                 return 0;
             }",
        )
        .unwrap();
        assert_eq!(program.functions.len(), 1);
        assert!(program.source_lines >= 7);
        assert!(program.instruction_count() > 5);
        assert_eq!(program.check_count(), 0); // not yet instrumented
    }

    #[test]
    fn compile_reports_parse_and_sema_errors() {
        assert!(super::compile("int f( {").is_err());
        assert!(super::compile("int f() { return undefined_var; }").is_err());
    }
}
