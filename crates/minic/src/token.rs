//! Tokens and source locations for the Mini-C/C++ frontend.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Loc {
    /// Construct a location.
    pub fn new(line: u32, col: u32) -> Self {
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords recognised by the lexer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Void,
    Bool,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Unsigned,
    Signed,
    Const,
    Static,
    Struct,
    Class,
    Union,
    Enum,
    Virtual,
    Public,
    If,
    Else,
    While,
    For,
    Do,
    Return,
    Break,
    Continue,
    Sizeof,
    New,
    Delete,
    True,
    False,
    Null,
}

impl Keyword {
    /// Look up a keyword from an identifier spelling.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "void" => Keyword::Void,
            "bool" => Keyword::Bool,
            "char" => Keyword::Char,
            "short" => Keyword::Short,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "unsigned" => Keyword::Unsigned,
            "signed" => Keyword::Signed,
            "const" => Keyword::Const,
            "static" => Keyword::Static,
            "struct" => Keyword::Struct,
            "class" => Keyword::Class,
            "union" => Keyword::Union,
            "enum" => Keyword::Enum,
            "virtual" => Keyword::Virtual,
            "public" => Keyword::Public,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "sizeof" => Keyword::Sizeof,
            "new" => Keyword::New,
            "delete" => Keyword::Delete,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "NULL" | "nullptr" => Keyword::Null,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
}

/// A lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier.
    Ident(String),
    /// A keyword.
    Keyword(Keyword),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A character literal (value of the character).
    Char(i64),
    /// A string literal (contents, unescaped).
    Str(String),
    /// Punctuation or an operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub loc: Loc,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, loc: Loc) -> Self {
        Token { kind, loc }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Int(v) => write!(f, "integer literal {v}"),
            TokenKind::Float(v) => write!(f, "float literal {v}"),
            TokenKind::Char(v) => write!(f, "char literal {v}"),
            TokenKind::Str(s) => write!(f, "string literal {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{p:?}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
