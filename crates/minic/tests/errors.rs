//! Error-path tests for the minic frontend: malformed input must surface
//! as `minic::error::CompileError` diagnostics with the right stage and a
//! usable location — never as a panic.

use minic::{compile, ErrorKind};

/// Compile and expect a diagnostic, returning it for further assertions.
fn expect_error(src: &str) -> minic::CompileError {
    match compile(src) {
        Ok(_) => panic!("source should not compile:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn malformed_struct_decls_are_parse_errors() {
    for src in [
        // Missing closing brace.
        "struct S { int a;",
        // Missing field name.
        "struct S { int; };",
        // Missing semicolon after the body.
        "struct S { int a; } int main() { return 0; }",
        // Garbage where a field type should be.
        "struct S { 42 a; };",
        // Nested brace soup.
        "struct S { struct { int; };",
    ] {
        let err = expect_error(src);
        assert_eq!(
            err.kind,
            ErrorKind::Parse,
            "wrong stage for:\n{src}\n→ {err}"
        );
        assert!(err.loc.line >= 1, "missing location for:\n{src}");
    }
}

#[test]
fn unterminated_literals_are_lex_errors() {
    for src in [
        "char *s = \"unterminated;",
        "int c = 'x;",
        "int c = ';",
        "char *s = \"bad escape \\",
        "/* comment that never ends",
    ] {
        let err = expect_error(src);
        assert_eq!(err.kind, ErrorKind::Lex, "wrong stage for:\n{src}\n→ {err}");
    }
}

#[test]
fn bad_casts_are_diagnosed_not_panicked() {
    // Casting to a pointer to an undefined struct is fine in C (incomplete
    // type) — but *using* it must be a compile-time diagnostic.
    let err = expect_error(
        "int main() {
             struct nope *p = (struct nope *)malloc(8);
             p->field = 1;
             return 0;
         }",
    );
    assert!(
        err.kind == ErrorKind::Sema || err.kind == ErrorKind::Lower,
        "expected a semantic diagnostic, got {err}"
    );

    // A cast *to* a record type by value is a constraint violation.
    let err = expect_error(
        "struct S { int a; };
         int main() { int x = 1; struct S s = (struct S)x; return 0; }",
    );
    assert_eq!(
        err.kind,
        ErrorKind::Sema,
        "cast-to-record should be sema: {err}"
    );

    // In this dialect a record rvalue decays to its address (like arrays),
    // so casting it onward is well-formed; it must still compile cleanly
    // rather than panic.
    assert!(compile(
        "struct S { int a; };
         int main() { struct S s; int *p = (int *)s; return 0; }",
    )
    .is_ok());

    // Cast with a missing operand.
    let err = expect_error("int main() { int x = (int); return 0; }");
    assert_eq!(err.kind, ErrorKind::Parse);
}

#[test]
fn diagnostics_render_with_stage_and_location() {
    let err = expect_error("struct S { int a;");
    let rendered = err.to_string();
    assert!(
        rendered.contains("parse error"),
        "rendered diagnostic should name the stage: {rendered}"
    );
    assert!(
        rendered.contains(&format!("{}:{}", err.loc.line, err.loc.col)),
        "rendered diagnostic should include the location: {rendered}"
    );
}

#[test]
fn errors_never_escape_as_panics_on_fuzzy_inputs() {
    // A grab-bag of hostile inputs; every one must return Ok or Err,
    // never panic.
    for src in [
        "",
        ";",
        "}{",
        "int",
        "int main(",
        "int main() { return",
        "int main() { (((((((((( }",
        "struct struct struct",
        "int a = 0x; ",
        "int main() { int x = 1 +; }",
        "\u{0}\u{1}\u{2}",
        "int main() { char *p = \"\\q\"; }",
        "struct S { struct S s; };",
    ] {
        let _ = compile(src);
    }
}
