//! Property tests for the backend-uniform bounds contract: for **every**
//! backend in the registry — all 13 of them, including the Memcheck, MPX
//! and EffectiveSan-escapes-off additions — `bounds_narrow` never widens
//! bounds, and bounds narrowed to in-allocation field ranges stay inside
//! the allocation (paper Fig. 3(e): narrowing is interval intersection).
//! The registry name round-trip (`Display` → `FromStr`) is property-tested
//! over the same set, so by-name backend selection covers every kind.

use std::sync::Arc;

use effective_runtime::{Bounds, RuntimeConfig};
use effective_types::{Type, TypeRegistry};
use lowfat::AllocKind;
use proptest::prelude::*;
use san_api::{registry, SanitizerKind};

fn types() -> Arc<TypeRegistry> {
    Arc::new(TypeRegistry::new())
}

/// The registry-driven properties below iterate `registry()`; this pins
/// down that the iteration really includes the three backends added on top
/// of the original ten, so their bounds behaviour cannot silently drop out
/// of the property coverage.
#[test]
fn property_coverage_includes_the_three_new_backends() {
    let kinds: Vec<SanitizerKind> = registry().iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.len(), 13);
    for kind in [
        SanitizerKind::Memcheck,
        SanitizerKind::Mpx,
        SanitizerKind::EffectiveEscapesOff,
    ] {
        assert!(kinds.contains(&kind), "{kind} missing from the registry");
    }
}

/// Is `inner` contained in `outer`, treating empty ranges as contained
/// everywhere (a fully narrowed-away range permits no access)?
fn within(inner: Bounds, outer: Bounds) -> bool {
    inner.width() == 0 || (inner.lo >= outer.lo && inner.hi <= outer.hi)
}

proptest! {
    /// `bounds_narrow(b, field)` never yields wider bounds than `b`,
    /// for every registered backend and arbitrary field rectangles
    /// (including ones far outside the allocation).
    #[test]
    fn narrowing_never_widens(
        size in 8u64..4096,
        field_off in 0i64..8192,
        field_width in 0u64..8192,
    ) {
        for entry in registry() {
            let mut backend = entry.build(types(), RuntimeConfig::default());
            let p = backend.on_alloc(size, &Type::int(), AllocKind::Heap);
            let bounds = backend.bounds_get(p);
            let field = Bounds::new(
                p.addr().wrapping_add_signed(field_off - 4096),
                p.addr().wrapping_add_signed(field_off - 4096).saturating_add(field_width),
            );
            let narrowed = backend.bounds_narrow(bounds, field);
            prop_assert!(
                narrowed.width() <= bounds.width(),
                "{}: narrow widened {bounds:?} to {narrowed:?}",
                entry.name()
            );
            prop_assert!(
                within(narrowed, bounds),
                "{}: narrowed {narrowed:?} escapes {bounds:?}",
                entry.name()
            );
        }
    }

    /// Narrowing allocation bounds to an in-allocation field keeps the
    /// result inside the allocation, and re-narrowing is monotone: a
    /// nested (sub-)field never re-widens the range.
    #[test]
    fn narrowed_bounds_stay_inside_the_allocation(
        size in 64u64..2048,
        off_frac in 0u64..100,
        width_frac in 1u64..100,
        sub_frac in 0u64..100,
    ) {
        for entry in registry() {
            let mut backend = entry.build(types(), RuntimeConfig::default());
            let p = backend.on_alloc(size, &Type::int(), AllocKind::Heap);
            let alloc = Bounds::from_base_size(p, size);
            let bounds = backend.bounds_get(p);

            // A field range fully inside the allocation.
            let off = size * off_frac / 100;
            let width = ((size - off) * width_frac / 100).max(1);
            let field = Bounds::new(p.addr() + off, p.addr() + off + width);
            let narrowed = backend.bounds_narrow(bounds, field);
            prop_assert!(
                within(narrowed, alloc),
                "{}: narrowed {narrowed:?} leaves allocation {alloc:?}",
                entry.name()
            );
            prop_assert!(within(narrowed, bounds), "{}: widened", entry.name());

            // Narrow again to a nested sub-range: still monotone.
            let sub_off = off + (width * sub_frac / 100);
            let sub = Bounds::new(p.addr() + sub_off, p.addr() + sub_off + 1);
            let renarrowed = backend.bounds_narrow(narrowed, sub);
            prop_assert!(
                within(renarrowed, narrowed),
                "{}: re-narrowing widened {narrowed:?} to {renarrowed:?}",
                entry.name()
            );
            prop_assert!(within(renarrowed, alloc), "{}: escaped allocation", entry.name());
        }
    }

    /// Every registered backend's display name parses back to the same
    /// kind regardless of casing — the registry-key contract that
    /// `SAN_BACKENDS` and the bench CLIs rely on, covering all 13 kinds
    /// (including Memcheck, MPX and the escapes-off ablation).
    #[test]
    fn registry_names_round_trip(idx in 0usize..13) {
        let kind = SanitizerKind::ALL[idx];
        let rendered = kind.to_string();
        prop_assert_eq!(rendered.parse::<SanitizerKind>().unwrap(), kind);
        prop_assert_eq!(
            rendered.to_uppercase().parse::<SanitizerKind>().unwrap(),
            kind
        );
        prop_assert_eq!(
            rendered.to_lowercase().parse::<SanitizerKind>().unwrap(),
            kind
        );
    }

    /// The bounds a backend hands out for a live tracked allocation never
    /// extend past the allocation itself (wide bounds — "untracked" —
    /// excepted), so every later narrow stays inside it too.
    #[test]
    fn bounds_get_is_allocation_bounded(size in 1u64..4096) {
        for entry in registry() {
            let mut backend = entry.build(types(), RuntimeConfig::default());
            let p = backend.on_alloc(size, &Type::int(), AllocKind::Heap);
            let bounds = backend.bounds_get(p);
            if !bounds.is_wide() {
                let alloc = Bounds::from_base_size(p, size);
                prop_assert!(
                    within(bounds, alloc),
                    "{}: bounds_get {bounds:?} exceeds allocation {alloc:?}",
                    entry.name()
                );
            }
        }
    }
}
