//! The [`Sanitizer`] trait: the complete instrumentation-hook surface every
//! backend implements, plus the unified [`SanStats`] counters.

use std::sync::Arc;

use effective_runtime::{Bounds, CheckStats, ErrorStats};
use effective_types::{Type, TypeId};
use lowfat::{AllocKind, FrameMark, Memory, Ptr};
use serde::{Deserialize, Serialize};

use crate::diagnostic::Diagnostic;
use crate::kind::SanitizerKind;

/// Unified per-backend check counters.
///
/// Merges the EffectiveSan runtime's `CheckStats` and the baseline tools'
/// `BaselineStats` into one shape, so cost models and report tables treat
/// every backend identically (the Figure 7 `#Type`/`#Bound` columns and the
/// §6.2 dynamic-check comparison).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanStats {
    /// Number of `type_check` calls.
    pub type_checks: u64,
    /// `type_check` calls that saw a legacy (non-low-fat or untyped)
    /// pointer and returned wide bounds.
    pub legacy_type_checks: u64,
    /// `type_check` calls that failed (type error reported).
    pub failed_type_checks: u64,
    /// Number of `bounds_check` calls.
    pub bounds_checks: u64,
    /// `bounds_check` calls that failed.
    pub failed_bounds_checks: u64,
    /// Number of `bounds_narrow` operations.
    pub bounds_narrows: u64,
    /// Number of `bounds_get` calls.
    pub bounds_gets: u64,
    /// Bound-table loads on bounds-register-file misses (the Intel-MPX
    /// model's `BNDLDX` spills; zero for software tools).
    pub bounds_table_loads: u64,
    /// Number of `cast_check` calls.
    pub cast_checks: u64,
    /// Per-access (shadow-memory / temporal) checks performed.
    pub access_checks: u64,
    /// Allocations that bound type meta data (typed allocations).
    pub typed_allocations: u64,
    /// Typed frees performed.
    pub typed_frees: u64,
    /// Allocations registered with the backend.
    pub allocations: u64,
    /// Frees registered with the backend.
    pub frees: u64,
    /// `type_check`/`cast_check` calls satisfied by the per-site check
    /// cache (no layout-table walk; zero for tools without one).
    pub check_cache_hits: u64,
    /// `type_check`/`cast_check` calls that walked the layout table.
    pub check_cache_misses: u64,
}

impl SanStats {
    /// Total number of checks of any kind (used for overhead modelling and
    /// the §6.2 dynamic-check column).
    pub fn total_checks(&self) -> u64 {
        self.type_checks
            + self.bounds_checks
            + self.bounds_gets
            + self.cast_checks
            + self.access_checks
    }

    /// Fraction of `type_check`/`cast_check` calls served by the per-site
    /// check cache (0.0 when no cacheable check ran).
    pub fn check_cache_hit_rate(&self) -> f64 {
        let total = self.check_cache_hits + self.check_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.check_cache_hits as f64 / total as f64
        }
    }

    /// Add the baseline tool's *check* counters on top (used by backends
    /// that pair a baseline runtime with the typed-allocator substrate).
    /// Allocation/free counts are not merged: the substrate already counts
    /// the same events, and double counting would skew the cost model.
    pub fn merge_baseline(&mut self, b: &baselines::BaselineStats) {
        self.access_checks += b.access_checks;
        self.bounds_gets += b.bounds_gets;
        self.bounds_checks += b.bounds_checks;
        self.bounds_narrows += b.bounds_narrows;
        self.bounds_table_loads += b.bounds_table_loads;
        self.cast_checks += b.cast_checks;
    }
}

impl From<CheckStats> for SanStats {
    fn from(c: CheckStats) -> Self {
        SanStats {
            type_checks: c.type_checks,
            legacy_type_checks: c.legacy_type_checks,
            failed_type_checks: c.failed_type_checks,
            bounds_checks: c.bounds_checks,
            failed_bounds_checks: c.failed_bounds_checks,
            bounds_narrows: c.bounds_narrows,
            bounds_gets: c.bounds_gets,
            bounds_table_loads: 0,
            cast_checks: c.cast_checks,
            access_checks: 0,
            typed_allocations: c.typed_allocations,
            typed_frees: c.typed_frees,
            allocations: c.typed_allocations,
            frees: c.typed_frees,
            check_cache_hits: c.check_cache_hits,
            check_cache_misses: c.check_cache_misses,
        }
    }
}

/// The unified sanitizer backend interface.
///
/// A `Sanitizer` is everything the VM needs to execute an instrumented
/// program: the simulated memory substrate, the allocation lifecycle hooks,
/// the check functions the instrumentation calls into, and end-of-run
/// reporting.  One trait covers the three EffectiveSan variants **and**
/// every comparison tool of the paper (Figure 1, §6.2), so the interpreter
/// dispatches through a single `Box<dyn Sanitizer>` with no per-tool
/// branching.
///
/// # Hook contracts
///
/// *Allocation lifecycle* — [`on_alloc`](Sanitizer::on_alloc) /
/// [`on_free`](Sanitizer::on_free) / [`on_realloc`](Sanitizer::on_realloc)
/// model the paper's typed-allocator wrappers `effective_malloc` /
/// `effective_free` (§5, Fig. 6 lines 1–7).  The backend owns the
/// allocator, so `on_alloc` *performs* the allocation and returns the
/// object pointer; tools that bind type meta data (the `META` header) do it
/// here, and temporal tools record identifiers/quarantine state.
///
/// *Bounds hooks* — [`bounds_get`](Sanitizer::bounds_get) is the reduced
/// instrumentation entry point (allocation bounds from pointer meta data,
/// §6.2; also the LowFat/SoftBound model), [`bounds_narrow`](Sanitizer::bounds_narrow)
/// intersects bounds with a field sub-object (Fig. 3(e)), and
/// [`bounds_check`](Sanitizer::bounds_check) verifies an access or pointer
/// escape against propagated `BOUNDS` values (Fig. 3(g)).
///
/// *Type hooks* — [`type_check`](Sanitizer::type_check) is the paper's
/// central `type_check(ptr, T)` (§4, Fig. 6 lines 9–24): verify the static
/// type against the object's dynamic type and return the matching
/// sub-object bounds.  [`cast_check`](Sanitizer::cast_check) is the
/// cast-site variant used by EffectiveSan-type and the TypeSan/HexType
/// class-hierarchy checkers (§6.2); it uniformly returns [`Bounds`] (wide
/// for tools that only produce a pass/fail verdict).
///
/// *Per-access hook* — [`access_check`](Sanitizer::access_check) models
/// shadow-memory tools with no propagated bounds (AddressSanitizer
/// red-zones, CETS identifier checks; §2.1).
///
/// *Reporting* — [`stats`](Sanitizer::stats) returns the unified dynamic
/// check counters, [`halted`](Sanitizer::halted) reflects the
/// abort-after-N-errors reporting mode (§6), and
/// [`finish`](Sanitizer::finish) renders every distinct issue as a
/// structured [`Diagnostic`] (§6.1 bucketing).
///
/// # No false positives
///
/// Every hook must be *conservative*: pointers the backend knows nothing
/// about (legacy allocations, foreign memory) yield wide bounds and pass
/// all checks, mirroring the paper's compatibility-first design (§5).
pub trait Sanitizer: std::fmt::Debug {
    /// Which registered backend this is.
    fn kind(&self) -> SanitizerKind;

    // ------------------------------------------------------------------
    // Memory substrate
    // ------------------------------------------------------------------

    /// The simulated memory backing the address space (read access).
    fn memory(&self) -> &Memory;

    /// The simulated memory backing the address space (write access).
    fn memory_mut(&mut self) -> &mut Memory;

    /// Open a stack frame in the simulated low-fat stack region; objects
    /// allocated with [`AllocKind::Stack`] belong to the innermost frame.
    fn stack_frame_begin(&mut self) -> FrameMark;

    /// Close a stack frame, releasing every stack object allocated in it.
    fn stack_frame_end(&mut self, mark: FrameMark);

    // ------------------------------------------------------------------
    // Allocation lifecycle (Fig. 6 lines 1-7)
    // ------------------------------------------------------------------

    /// Pre-intern every type a program references before execution starts,
    /// so hot-path checks never pay first-touch meta-data construction
    /// (layout-table builds, id assignment).  `alloc_types` are allocation
    /// element types (globals, `Alloca`, allocation builtins) and may get
    /// layout tables built; `check_types` are the static types of check
    /// sites and must only be interned as layout-table keys, exactly as
    /// the lazy path would.  Purely a warm-up: dynamic check behaviour and
    /// statistics must be identical with or without it.  (The type
    /// meta-data footprint may still cover allocation types on paths a
    /// given run never executes.)  Tools that keep no type meta data
    /// ignore it (the default).
    fn preload_types(&mut self, _alloc_types: &[Type], _check_types: &[Type]) {}

    /// Allocate `size` bytes with element type `elem`, binding whatever
    /// meta data this tool keeps, and return the object pointer.
    /// [`AllocKind::Legacy`] allocations are invisible to every tool
    /// (custom memory allocators, §6.1).
    fn on_alloc(&mut self, size: u64, elem: &Type, kind: AllocKind) -> Ptr;

    /// Release the object at `ptr` (binding the `FREE` type, quarantining,
    /// or invalidating identifiers, per tool).  Detects double frees.
    fn on_free(&mut self, ptr: Ptr, location: &Arc<str>);

    /// Grow/shrink the allocation at `ptr` to `new_size` bytes, copying the
    /// payload; returns the new object pointer.
    fn on_realloc(&mut self, ptr: Ptr, new_size: u64, elem: &Type, location: &Arc<str>) -> Ptr;

    // ------------------------------------------------------------------
    // Checks (dispatched from the instrumented program)
    // ------------------------------------------------------------------

    /// Intern a check-site static type into this tool's id space, returning
    /// the [`TypeId`] that [`type_check`](Self::type_check) and
    /// [`cast_check`](Self::cast_check) expect.  Called once per check site
    /// at program-load time (never on the hot path); tools that keep no
    /// type meta data may return [`TypeId::UNTYPED`].
    fn intern_check_type(&mut self, ty: &Type) -> TypeId;

    /// Verify `ptr` against the interned static type `static_ty` and return
    /// the matching sub-object's bounds; wide bounds on legacy pointers or
    /// failure (§4, Fig. 6 lines 9–24).  The id comes from
    /// [`intern_check_type`](Self::intern_check_type), so the hot path
    /// never hashes a structural [`Type`].  Tools without dynamic type
    /// information return wide bounds and never report.
    fn type_check(&mut self, ptr: Ptr, static_ty: TypeId, location: &Arc<str>) -> Bounds;

    /// The cast-site check (§6.2): like [`type_check`](Self::type_check)
    /// but failures classify as bad casts.  Always returns [`Bounds`];
    /// class-hierarchy checkers that only produce a verdict return wide
    /// bounds.
    fn cast_check(&mut self, ptr: Ptr, static_ty: TypeId, location: &Arc<str>) -> Bounds;

    /// The allocation bounds of the object `ptr` points into, from this
    /// tool's meta data; wide bounds when untracked (§6.2, LowFat §2.3).
    fn bounds_get(&mut self, ptr: Ptr) -> Bounds;

    /// Narrow `bounds` to the field sub-object `field` (Fig. 3(e));
    /// never widens.
    fn bounds_narrow(&mut self, bounds: Bounds, field: Bounds) -> Bounds;

    /// Verify an access of `size` bytes at `ptr` against propagated
    /// `bounds` (Fig. 3(g)); `escape` marks pointer-escape checks.  Returns
    /// `true` when in bounds.
    fn bounds_check(
        &mut self,
        ptr: Ptr,
        size: u64,
        bounds: Bounds,
        location: &Arc<str>,
        escape: bool,
    ) -> bool;

    /// Per-access shadow/temporal check with no propagated bounds
    /// (AddressSanitizer / CETS, §2.1).  Returns `true` when the access is
    /// allowed.
    fn access_check(&mut self, ptr: Ptr, size: u64, write: bool, location: &Arc<str>) -> bool;

    // ------------------------------------------------------------------
    // Reporting (§6, §6.1)
    // ------------------------------------------------------------------

    /// Unified dynamic-check counters.
    fn stats(&self) -> SanStats;

    /// Has the abort-after-N-errors limit been reached (§6 reporting
    /// modes)?
    fn halted(&self) -> bool;

    /// Aggregated error statistics of this tool's reporter (distinct
    /// issues bucketed by type and offset, §6.1).
    fn error_stats(&self) -> ErrorStats;

    /// Render every distinct issue found so far as a structured
    /// [`Diagnostic`] (empty in counting mode).  Called at the end of a
    /// run; idempotent.
    fn finish(&mut self) -> Vec<Diagnostic>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanstats_total_counts_every_check_family() {
        let stats = SanStats {
            type_checks: 1,
            bounds_checks: 2,
            bounds_gets: 3,
            cast_checks: 4,
            access_checks: 5,
            bounds_narrows: 100, // narrows are not "checks"
            ..Default::default()
        };
        assert_eq!(stats.total_checks(), 15);
    }

    #[test]
    fn from_checkstats_maps_fields() {
        let c = CheckStats {
            type_checks: 7,
            legacy_type_checks: 2,
            failed_type_checks: 1,
            bounds_checks: 9,
            typed_allocations: 4,
            typed_frees: 3,
            ..Default::default()
        };
        let s = SanStats::from(c);
        assert_eq!(s.type_checks, 7);
        assert_eq!(s.legacy_type_checks, 2);
        assert_eq!(s.failed_type_checks, 1);
        assert_eq!(s.bounds_checks, 9);
        assert_eq!(s.typed_allocations, 4);
        assert_eq!(s.allocations, 4);
        assert_eq!(s.frees, 3);
        assert_eq!(s.access_checks, 0);
    }

    #[test]
    fn merge_baseline_is_additive() {
        let mut s = SanStats {
            typed_allocations: 2,
            allocations: 2,
            ..Default::default()
        };
        s.merge_baseline(&baselines::BaselineStats {
            access_checks: 10,
            bounds_gets: 1,
            bounds_checks: 2,
            bounds_narrows: 3,
            bounds_table_loads: 5,
            cast_checks: 4,
            allocations: 2,
            frees: 1,
        });
        assert_eq!(s.access_checks, 10);
        assert_eq!(s.cast_checks, 4);
        assert_eq!(s.bounds_table_loads, 5);
        // Allocation events are counted once, by the substrate.
        assert_eq!(s.allocations, 2);
        assert_eq!(s.frees, 0);
        assert_eq!(s.total_checks(), 17);
    }
}
