//! Sanitizer kinds and the instrumentation configuration they map to.
//!
//! The paper evaluates EffectiveSan in three variants (§6.2) and compares
//! against a set of existing sanitizers (Figure 1).  This module describes
//! every tool as a configuration of the same generic instrumentation pass
//! (`instrument::pass`), so that all tools can be run on identical
//! workloads and the capability matrix / overhead comparison can be
//! regenerated.  [`SanitizerKind`] is also the key of the backend registry
//! ([`crate::registry()`]): it parses from and renders to a stable name, so
//! pipelines, bench binaries and workloads can select backends by string.

use std::str::FromStr;

use baselines::BaselineKind;
use serde::{Deserialize, Serialize};

/// What kind of check guards *input pointers* (Fig. 3 rules (a)–(d)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputCheck {
    /// No input-pointer instrumentation.
    None,
    /// Full dynamic type check (`type_check`) — EffectiveSan.
    TypeCheck,
    /// Allocation-bounds query (`bounds_get`) — EffectiveSan-bounds,
    /// SoftBound/LowFat-style tools.
    BoundsGet,
}

/// Which sanitizer a program is instrumented for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SanitizerKind {
    /// No instrumentation (the uninstrumented baseline of Figures 8–10).
    None,
    /// EffectiveSan with full instrumentation.
    EffectiveFull,
    /// EffectiveSan-bounds: object-bounds checking only (§6.2).
    EffectiveBounds,
    /// EffectiveSan-type: cast checking only (§6.2).
    EffectiveType,
    /// AddressSanitizer-style red-zones + shadow memory + quarantine.
    AddressSanitizer,
    /// LowFat allocation-bounds checking.
    LowFat,
    /// SoftBound-style per-pointer bounds with sub-object narrowing.
    SoftBound,
    /// TypeSan/CaVer-style C++ class cast checking.
    TypeSan,
    /// HexType-style cast checking (extends TypeSan to more cast kinds).
    HexType,
    /// CETS-style identifier-based temporal checking.
    Cets,
}

impl SanitizerKind {
    /// All kinds, in the order used by report tables.
    pub const ALL: [SanitizerKind; 10] = [
        SanitizerKind::None,
        SanitizerKind::EffectiveFull,
        SanitizerKind::EffectiveBounds,
        SanitizerKind::EffectiveType,
        SanitizerKind::AddressSanitizer,
        SanitizerKind::LowFat,
        SanitizerKind::SoftBound,
        SanitizerKind::TypeSan,
        SanitizerKind::HexType,
        SanitizerKind::Cets,
    ];

    /// Short display name matching the paper's tables.  This is the
    /// canonical registry key: `name().parse::<SanitizerKind>()` round-trips.
    pub fn name(self) -> &'static str {
        match self {
            SanitizerKind::None => "uninstrumented",
            SanitizerKind::EffectiveFull => "EffectiveSan",
            SanitizerKind::EffectiveBounds => "EffectiveSan-bounds",
            SanitizerKind::EffectiveType => "EffectiveSan-type",
            SanitizerKind::AddressSanitizer => "AddressSanitizer",
            SanitizerKind::LowFat => "LowFat",
            SanitizerKind::SoftBound => "SoftBound",
            SanitizerKind::TypeSan => "TypeSan",
            SanitizerKind::HexType => "HexType",
            SanitizerKind::Cets => "CETS",
        }
    }

    /// Is this one of the three EffectiveSan variants?
    pub fn is_effective(self) -> bool {
        matches!(
            self,
            SanitizerKind::EffectiveFull
                | SanitizerKind::EffectiveBounds
                | SanitizerKind::EffectiveType
        )
    }

    /// The comparison-tool runtime this kind is backed by, if it is one of
    /// the baseline sanitizers (§6.2) rather than an EffectiveSan variant.
    pub fn baseline_kind(self) -> Option<BaselineKind> {
        match self {
            SanitizerKind::AddressSanitizer => Some(BaselineKind::AddressSanitizer),
            SanitizerKind::LowFat => Some(BaselineKind::LowFat),
            SanitizerKind::SoftBound => Some(BaselineKind::SoftBound),
            SanitizerKind::TypeSan => Some(BaselineKind::TypeSan),
            SanitizerKind::HexType => Some(BaselineKind::HexType),
            SanitizerKind::Cets => Some(BaselineKind::Cets),
            _ => None,
        }
    }

    /// The instrumentation configuration for this sanitizer.
    pub fn config(self) -> PassConfig {
        match self {
            SanitizerKind::None => PassConfig {
                input_check: InputCheck::None,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveFull => PassConfig {
                input_check: InputCheck::TypeCheck,
                narrow_fields: true,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveBounds => PassConfig {
                input_check: InputCheck::BoundsGet,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveType => PassConfig {
                cast_check_explicit: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::AddressSanitizer => PassConfig {
                access_check: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::LowFat => PassConfig {
                input_check: InputCheck::BoundsGet,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::SoftBound => PassConfig {
                input_check: InputCheck::BoundsGet,
                narrow_fields: true,
                bounds_check_accesses: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::TypeSan => PassConfig {
                cast_check_explicit: true,
                cast_check_classes_only: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::HexType => PassConfig {
                cast_check_explicit: true,
                cast_check_classes_only: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::Cets => PassConfig {
                access_check: true,
                ..PassConfig::disabled()
            },
        }
    }
}

impl std::fmt::Display for SanitizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a backend name does not match any registered
/// [`SanitizerKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSanitizerKindError {
    /// The name that failed to parse.
    pub name: String,
}

impl std::fmt::Display for ParseSanitizerKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown sanitizer backend `{}` (known: {})",
            self.name,
            SanitizerKind::ALL.map(|k| k.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseSanitizerKindError {}

impl FromStr for SanitizerKind {
    type Err = ParseSanitizerKindError;

    /// Parse a backend name.  Canonical [`SanitizerKind::name`] strings are
    /// accepted case-insensitively, plus the common short aliases used on
    /// bench-binary command lines (`asan`, `full`, `bounds`, `type`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_lowercase().replace('_', "-");
        let kind = match norm.as_str() {
            "uninstrumented" | "none" => SanitizerKind::None,
            "effectivesan" | "effective" | "effective-full" | "effectivesan-full" | "full" => {
                SanitizerKind::EffectiveFull
            }
            "effectivesan-bounds" | "effective-bounds" | "bounds" => SanitizerKind::EffectiveBounds,
            "effectivesan-type" | "effective-type" | "type" => SanitizerKind::EffectiveType,
            "addresssanitizer" | "asan" => SanitizerKind::AddressSanitizer,
            "lowfat" | "low-fat" => SanitizerKind::LowFat,
            "softbound" => SanitizerKind::SoftBound,
            "typesan" | "caver" => SanitizerKind::TypeSan,
            "hextype" => SanitizerKind::HexType,
            "cets" => SanitizerKind::Cets,
            _ => {
                return Err(ParseSanitizerKindError {
                    name: s.to_string(),
                })
            }
        };
        Ok(kind)
    }
}

/// Configuration of the generic instrumentation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Check inserted for input pointers (Fig. 3 (a)–(d)).
    pub input_check: InputCheck,
    /// Instrument every *explicit* pointer cast with a `cast_check`,
    /// regardless of whether the result is used (EffectiveSan-type,
    /// TypeSan, HexType).
    pub cast_check_explicit: bool,
    /// Restrict cast checks to casts whose target is a class/struct pointer
    /// (TypeSan/CaVer/HexType only understand C++ class hierarchies).
    pub cast_check_classes_only: bool,
    /// Narrow bounds at field accesses (Fig. 3(e)).
    pub narrow_fields: bool,
    /// Bounds-check loads and stores (Fig. 3(g)).
    pub bounds_check_accesses: bool,
    /// Bounds-check pointer escapes (stores of pointers, pointer call
    /// arguments) (Fig. 3(g)).
    pub bounds_check_escapes: bool,
    /// Insert per-access checks with no propagated bounds (AddressSanitizer
    /// / CETS style).
    pub access_check: bool,
    /// Run the redundant-check optimizations described in §6.
    pub optimize: bool,
}

impl PassConfig {
    /// A configuration with every feature disabled.
    pub fn disabled() -> Self {
        PassConfig {
            input_check: InputCheck::None,
            cast_check_explicit: false,
            cast_check_classes_only: false,
            narrow_fields: false,
            bounds_check_accesses: false,
            bounds_check_escapes: false,
            access_check: false,
            optimize: false,
        }
    }

    /// Does this configuration insert any instrumentation at all?
    pub fn is_enabled(&self) -> bool {
        self.input_check != InputCheck::None
            || self.cast_check_explicit
            || self.access_check
            || self.bounds_check_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_distinct_name() {
        let names: std::collections::HashSet<_> =
            SanitizerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), SanitizerKind::ALL.len());
    }

    #[test]
    fn all_covers_every_kind() {
        assert_eq!(SanitizerKind::ALL.len(), 10);
    }

    #[test]
    fn display_and_fromstr_round_trip() {
        for kind in SanitizerKind::ALL {
            let rendered = kind.to_string();
            assert_eq!(rendered, kind.name());
            let parsed: SanitizerKind = rendered.parse().unwrap();
            assert_eq!(parsed, kind, "round-trip failed for {rendered}");
            // Case-insensitive.
            assert_eq!(
                rendered.to_uppercase().parse::<SanitizerKind>().unwrap(),
                kind
            );
        }
    }

    #[test]
    fn aliases_parse_and_unknown_names_error() {
        assert_eq!(
            "asan".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::AddressSanitizer
        );
        assert_eq!(
            "full".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::EffectiveFull
        );
        assert_eq!(
            "bounds".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::EffectiveBounds
        );
        assert_eq!(
            "none".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::None
        );
        let err = "mpx".parse::<SanitizerKind>().unwrap_err();
        assert!(err.to_string().contains("mpx"));
        assert!(err.to_string().contains("EffectiveSan"));
    }

    #[test]
    fn baseline_kind_maps_comparison_tools_only() {
        assert_eq!(
            SanitizerKind::AddressSanitizer.baseline_kind(),
            Some(BaselineKind::AddressSanitizer)
        );
        assert_eq!(
            SanitizerKind::Cets.baseline_kind(),
            Some(BaselineKind::Cets)
        );
        assert_eq!(SanitizerKind::EffectiveFull.baseline_kind(), None);
        assert_eq!(SanitizerKind::None.baseline_kind(), None);
    }

    #[test]
    fn uninstrumented_config_is_disabled() {
        assert!(!SanitizerKind::None.config().is_enabled());
        assert!(SanitizerKind::EffectiveFull.config().is_enabled());
    }

    #[test]
    fn effective_variants_match_the_paper() {
        let full = SanitizerKind::EffectiveFull.config();
        assert_eq!(full.input_check, InputCheck::TypeCheck);
        assert!(full.narrow_fields && full.bounds_check_accesses && full.bounds_check_escapes);

        let bounds = SanitizerKind::EffectiveBounds.config();
        assert_eq!(bounds.input_check, InputCheck::BoundsGet);
        assert!(
            !bounds.narrow_fields,
            "bounds variant protects object bounds only"
        );

        let ty = SanitizerKind::EffectiveType.config();
        assert_eq!(ty.input_check, InputCheck::None);
        assert!(ty.cast_check_explicit);
        assert!(!ty.bounds_check_accesses);
    }

    #[test]
    fn cast_only_tools_are_class_restricted() {
        assert!(SanitizerKind::TypeSan.config().cast_check_classes_only);
        assert!(SanitizerKind::HexType.config().cast_check_classes_only);
        assert!(
            !SanitizerKind::EffectiveType
                .config()
                .cast_check_classes_only
        );
    }

    #[test]
    fn is_effective_classifies_variants() {
        assert!(SanitizerKind::EffectiveFull.is_effective());
        assert!(SanitizerKind::EffectiveType.is_effective());
        assert!(!SanitizerKind::AddressSanitizer.is_effective());
        assert!(!SanitizerKind::None.is_effective());
    }
}
