//! Sanitizer kinds and the instrumentation configuration they map to.
//!
//! The paper evaluates EffectiveSan in three variants (§6.2) and compares
//! against a set of existing sanitizers (Figure 1).  This module describes
//! every tool as a configuration of the same generic instrumentation pass
//! (`instrument::pass`), so that all tools can be run on identical
//! workloads and the capability matrix / overhead comparison can be
//! regenerated.  [`SanitizerKind`] is also the key of the backend registry
//! ([`crate::registry()`]): it parses from and renders to a stable name, so
//! pipelines, bench binaries and workloads can select backends by string.

use std::str::FromStr;

use baselines::BaselineKind;
use serde::{Deserialize, Serialize};

/// What kind of check guards *input pointers* (Fig. 3 rules (a)–(d)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputCheck {
    /// No input-pointer instrumentation.
    None,
    /// Full dynamic type check (`type_check`) — EffectiveSan.
    TypeCheck,
    /// Allocation-bounds query (`bounds_get`) — EffectiveSan-bounds,
    /// SoftBound/LowFat-style tools.
    BoundsGet,
}

/// Which sanitizer a program is instrumented for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SanitizerKind {
    /// No instrumentation (the uninstrumented baseline of Figures 8–10).
    None,
    /// EffectiveSan with full instrumentation.
    EffectiveFull,
    /// EffectiveSan-bounds: object-bounds checking only (§6.2).
    EffectiveBounds,
    /// EffectiveSan-type: cast checking only (§6.2).
    EffectiveType,
    /// EffectiveSan with escape bounds checking disabled — the ablation
    /// that keeps full type/bounds checking on dereferences but drops the
    /// Fig. 3(g) checks on pointer stores, arguments and returns.
    EffectiveEscapesOff,
    /// AddressSanitizer-style red-zones + shadow memory + quarantine.
    AddressSanitizer,
    /// Valgrind/Memcheck-style pure shadow-memory addressability checking.
    Memcheck,
    /// LowFat allocation-bounds checking.
    LowFat,
    /// SoftBound-style per-pointer bounds with sub-object narrowing.
    SoftBound,
    /// Intel-MPX model: allocation-bounds checks through a 4-entry bounds
    /// register file (the paper's ~200% hardware reference point).
    Mpx,
    /// TypeSan/CaVer-style C++ class cast checking.
    TypeSan,
    /// HexType-style cast checking (extends TypeSan to more cast kinds).
    HexType,
    /// CETS-style identifier-based temporal checking.
    Cets,
}

impl SanitizerKind {
    /// All kinds, in the order used by report tables.
    pub const ALL: [SanitizerKind; 13] = [
        SanitizerKind::None,
        SanitizerKind::EffectiveFull,
        SanitizerKind::EffectiveBounds,
        SanitizerKind::EffectiveType,
        SanitizerKind::EffectiveEscapesOff,
        SanitizerKind::AddressSanitizer,
        SanitizerKind::Memcheck,
        SanitizerKind::LowFat,
        SanitizerKind::SoftBound,
        SanitizerKind::Mpx,
        SanitizerKind::TypeSan,
        SanitizerKind::HexType,
        SanitizerKind::Cets,
    ];

    /// Short display name matching the paper's tables.  This is the
    /// canonical registry key: `name().parse::<SanitizerKind>()` round-trips.
    pub fn name(self) -> &'static str {
        match self {
            SanitizerKind::None => "uninstrumented",
            SanitizerKind::EffectiveFull => "EffectiveSan",
            SanitizerKind::EffectiveBounds => "EffectiveSan-bounds",
            SanitizerKind::EffectiveType => "EffectiveSan-type",
            SanitizerKind::EffectiveEscapesOff => "EffectiveSan-escapes-off",
            SanitizerKind::AddressSanitizer => "AddressSanitizer",
            SanitizerKind::Memcheck => "Memcheck",
            SanitizerKind::LowFat => "LowFat",
            SanitizerKind::SoftBound => "SoftBound",
            SanitizerKind::Mpx => "MPX",
            SanitizerKind::TypeSan => "TypeSan",
            SanitizerKind::HexType => "HexType",
            SanitizerKind::Cets => "CETS",
        }
    }

    /// Is this one of the EffectiveSan variants (full, bounds, type, or the
    /// escapes-off ablation)?
    pub fn is_effective(self) -> bool {
        matches!(
            self,
            SanitizerKind::EffectiveFull
                | SanitizerKind::EffectiveBounds
                | SanitizerKind::EffectiveType
                | SanitizerKind::EffectiveEscapesOff
        )
    }

    /// The comparison-tool runtime this kind is backed by, if it is one of
    /// the baseline sanitizers (§6.2) rather than an EffectiveSan variant.
    pub fn baseline_kind(self) -> Option<BaselineKind> {
        match self {
            SanitizerKind::AddressSanitizer => Some(BaselineKind::AddressSanitizer),
            SanitizerKind::Memcheck => Some(BaselineKind::Memcheck),
            SanitizerKind::LowFat => Some(BaselineKind::LowFat),
            SanitizerKind::SoftBound => Some(BaselineKind::SoftBound),
            SanitizerKind::Mpx => Some(BaselineKind::Mpx),
            SanitizerKind::TypeSan => Some(BaselineKind::TypeSan),
            SanitizerKind::HexType => Some(BaselineKind::HexType),
            SanitizerKind::Cets => Some(BaselineKind::Cets),
            _ => None,
        }
    }

    /// The substrate allocator quarantine (freed blocks whose reuse is
    /// delayed) this tool runs with by default: AddressSanitizer's bounded
    /// quarantine, Memcheck's much larger freelist, and no quarantine for
    /// everything else (the EffectiveSan default — reuse-after-free
    /// detection then relies on the type mismatch alone, §5).
    pub fn default_quarantine_blocks(self) -> usize {
        match self {
            SanitizerKind::AddressSanitizer => baselines::ASAN_QUARANTINE,
            SanitizerKind::Memcheck => baselines::MEMCHECK_FREELIST_BLOCKS,
            _ => 0,
        }
    }

    /// The instrumentation configuration for this sanitizer.
    pub fn config(self) -> PassConfig {
        match self {
            SanitizerKind::None => PassConfig {
                input_check: InputCheck::None,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveFull => PassConfig {
                input_check: InputCheck::TypeCheck,
                narrow_fields: true,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveBounds => PassConfig {
                input_check: InputCheck::BoundsGet,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveType => PassConfig {
                cast_check_explicit: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::EffectiveEscapesOff => PassConfig {
                bounds_check_escapes: false,
                ..SanitizerKind::EffectiveFull.config()
            },
            SanitizerKind::AddressSanitizer => PassConfig {
                access_check: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::Memcheck => PassConfig {
                access_check: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::LowFat => PassConfig {
                input_check: InputCheck::BoundsGet,
                bounds_check_accesses: true,
                bounds_check_escapes: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::SoftBound => PassConfig {
                input_check: InputCheck::BoundsGet,
                narrow_fields: true,
                bounds_check_accesses: true,
                optimize: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::Mpx => PassConfig {
                // MPX checks dereferences against allocation bounds but
                // does not narrow to fields, and its compiler pass performs
                // none of the §6 redundant-check optimizations — together
                // with the bound-table spills this is what puts it near the
                // paper's ~200% reference point despite hardware support.
                input_check: InputCheck::BoundsGet,
                bounds_check_accesses: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::TypeSan => PassConfig {
                cast_check_explicit: true,
                cast_check_classes_only: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::HexType => PassConfig {
                cast_check_explicit: true,
                cast_check_classes_only: true,
                ..PassConfig::disabled()
            },
            SanitizerKind::Cets => PassConfig {
                access_check: true,
                ..PassConfig::disabled()
            },
        }
    }
}

impl std::fmt::Display for SanitizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a backend name does not match any registered
/// [`SanitizerKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSanitizerKindError {
    /// The name that failed to parse.
    pub name: String,
}

impl std::fmt::Display for ParseSanitizerKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown sanitizer backend `{}` (known: {})",
            self.name,
            SanitizerKind::ALL.map(|k| k.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseSanitizerKindError {}

impl FromStr for SanitizerKind {
    type Err = ParseSanitizerKindError;

    /// Parse a backend name.  Canonical [`SanitizerKind::name`] strings are
    /// accepted case-insensitively, plus the common short aliases used on
    /// bench-binary command lines (`asan`, `full`, `bounds`, `type`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_lowercase().replace('_', "-");
        let kind = match norm.as_str() {
            "uninstrumented" | "none" => SanitizerKind::None,
            "effectivesan" | "effective" | "effective-full" | "effectivesan-full" | "full" => {
                SanitizerKind::EffectiveFull
            }
            "effectivesan-bounds" | "effective-bounds" | "bounds" => SanitizerKind::EffectiveBounds,
            "effectivesan-type" | "effective-type" | "type" => SanitizerKind::EffectiveType,
            "effectivesan-escapes-off" | "effective-escapes-off" | "escapes-off" | "no-escapes" => {
                SanitizerKind::EffectiveEscapesOff
            }
            "addresssanitizer" | "asan" => SanitizerKind::AddressSanitizer,
            "memcheck" | "valgrind" => SanitizerKind::Memcheck,
            "lowfat" | "low-fat" => SanitizerKind::LowFat,
            "softbound" => SanitizerKind::SoftBound,
            "mpx" | "intel-mpx" | "intelmpx" => SanitizerKind::Mpx,
            "typesan" | "caver" => SanitizerKind::TypeSan,
            "hextype" => SanitizerKind::HexType,
            "cets" => SanitizerKind::Cets,
            _ => {
                return Err(ParseSanitizerKindError {
                    name: s.to_string(),
                })
            }
        };
        Ok(kind)
    }
}

/// Configuration of the generic instrumentation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Check inserted for input pointers (Fig. 3 (a)–(d)).
    pub input_check: InputCheck,
    /// Instrument every *explicit* pointer cast with a `cast_check`,
    /// regardless of whether the result is used (EffectiveSan-type,
    /// TypeSan, HexType).
    pub cast_check_explicit: bool,
    /// Restrict cast checks to casts whose target is a class/struct pointer
    /// (TypeSan/CaVer/HexType only understand C++ class hierarchies).
    pub cast_check_classes_only: bool,
    /// Narrow bounds at field accesses (Fig. 3(e)).
    pub narrow_fields: bool,
    /// Bounds-check loads and stores (Fig. 3(g)).
    pub bounds_check_accesses: bool,
    /// Bounds-check pointer escapes (stores of pointers, pointer call
    /// arguments) (Fig. 3(g)).
    pub bounds_check_escapes: bool,
    /// Insert per-access checks with no propagated bounds (AddressSanitizer
    /// / CETS style).
    pub access_check: bool,
    /// Run the redundant-check optimizations described in §6.
    pub optimize: bool,
}

impl PassConfig {
    /// A configuration with every feature disabled.
    pub fn disabled() -> Self {
        PassConfig {
            input_check: InputCheck::None,
            cast_check_explicit: false,
            cast_check_classes_only: false,
            narrow_fields: false,
            bounds_check_accesses: false,
            bounds_check_escapes: false,
            access_check: false,
            optimize: false,
        }
    }

    /// Does this configuration insert any instrumentation at all?
    pub fn is_enabled(&self) -> bool {
        self.input_check != InputCheck::None
            || self.cast_check_explicit
            || self.access_check
            || self.bounds_check_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_distinct_name() {
        let names: std::collections::HashSet<_> =
            SanitizerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), SanitizerKind::ALL.len());
    }

    #[test]
    fn all_covers_every_kind() {
        assert_eq!(SanitizerKind::ALL.len(), 13);
    }

    #[test]
    fn display_and_fromstr_round_trip() {
        for kind in SanitizerKind::ALL {
            let rendered = kind.to_string();
            assert_eq!(rendered, kind.name());
            let parsed: SanitizerKind = rendered.parse().unwrap();
            assert_eq!(parsed, kind, "round-trip failed for {rendered}");
            // Case-insensitive.
            assert_eq!(
                rendered.to_uppercase().parse::<SanitizerKind>().unwrap(),
                kind
            );
        }
    }

    #[test]
    fn aliases_parse_and_unknown_names_error() {
        assert_eq!(
            "asan".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::AddressSanitizer
        );
        assert_eq!(
            "full".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::EffectiveFull
        );
        assert_eq!(
            "bounds".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::EffectiveBounds
        );
        assert_eq!(
            "none".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::None
        );
        assert_eq!(
            "valgrind".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::Memcheck
        );
        assert_eq!(
            "intel-mpx".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::Mpx
        );
        assert_eq!(
            "escapes-off".parse::<SanitizerKind>().unwrap(),
            SanitizerKind::EffectiveEscapesOff
        );
        let err = "dataflowsan".parse::<SanitizerKind>().unwrap_err();
        assert!(err.to_string().contains("dataflowsan"));
        assert!(err.to_string().contains("EffectiveSan"));
        assert!(err.to_string().contains("Memcheck"));
    }

    #[test]
    fn baseline_kind_maps_comparison_tools_only() {
        assert_eq!(
            SanitizerKind::AddressSanitizer.baseline_kind(),
            Some(BaselineKind::AddressSanitizer)
        );
        assert_eq!(
            SanitizerKind::Cets.baseline_kind(),
            Some(BaselineKind::Cets)
        );
        assert_eq!(
            SanitizerKind::Memcheck.baseline_kind(),
            Some(BaselineKind::Memcheck)
        );
        assert_eq!(SanitizerKind::Mpx.baseline_kind(), Some(BaselineKind::Mpx));
        assert_eq!(SanitizerKind::EffectiveFull.baseline_kind(), None);
        assert_eq!(SanitizerKind::EffectiveEscapesOff.baseline_kind(), None);
        assert_eq!(SanitizerKind::None.baseline_kind(), None);
    }

    #[test]
    fn escapes_off_is_full_minus_escape_checks() {
        let full = SanitizerKind::EffectiveFull.config();
        let off = SanitizerKind::EffectiveEscapesOff.config();
        assert!(!off.bounds_check_escapes);
        assert_eq!(
            PassConfig {
                bounds_check_escapes: true,
                ..off
            },
            full
        );
        assert!(SanitizerKind::EffectiveEscapesOff.is_effective());
    }

    #[test]
    fn mpx_checks_allocation_bounds_without_narrowing_or_optimizing() {
        let mpx = SanitizerKind::Mpx.config();
        assert_eq!(mpx.input_check, InputCheck::BoundsGet);
        assert!(mpx.bounds_check_accesses);
        assert!(!mpx.narrow_fields);
        assert!(!mpx.bounds_check_escapes);
        assert!(!mpx.optimize, "MPX's pass does not optimize checks");
    }

    #[test]
    fn quarantine_defaults_follow_the_tools_allocators() {
        assert_eq!(
            SanitizerKind::AddressSanitizer.default_quarantine_blocks(),
            baselines::ASAN_QUARANTINE
        );
        assert_eq!(
            SanitizerKind::Memcheck.default_quarantine_blocks(),
            baselines::MEMCHECK_FREELIST_BLOCKS
        );
        assert!(
            SanitizerKind::Memcheck.default_quarantine_blocks()
                > SanitizerKind::AddressSanitizer.default_quarantine_blocks()
        );
        assert_eq!(SanitizerKind::EffectiveFull.default_quarantine_blocks(), 0);
        assert_eq!(SanitizerKind::Cets.default_quarantine_blocks(), 0);
    }

    #[test]
    fn uninstrumented_config_is_disabled() {
        assert!(!SanitizerKind::None.config().is_enabled());
        assert!(SanitizerKind::EffectiveFull.config().is_enabled());
    }

    #[test]
    fn effective_variants_match_the_paper() {
        let full = SanitizerKind::EffectiveFull.config();
        assert_eq!(full.input_check, InputCheck::TypeCheck);
        assert!(full.narrow_fields && full.bounds_check_accesses && full.bounds_check_escapes);

        let bounds = SanitizerKind::EffectiveBounds.config();
        assert_eq!(bounds.input_check, InputCheck::BoundsGet);
        assert!(
            !bounds.narrow_fields,
            "bounds variant protects object bounds only"
        );

        let ty = SanitizerKind::EffectiveType.config();
        assert_eq!(ty.input_check, InputCheck::None);
        assert!(ty.cast_check_explicit);
        assert!(!ty.bounds_check_accesses);
    }

    #[test]
    fn cast_only_tools_are_class_restricted() {
        assert!(SanitizerKind::TypeSan.config().cast_check_classes_only);
        assert!(SanitizerKind::HexType.config().cast_check_classes_only);
        assert!(
            !SanitizerKind::EffectiveType
                .config()
                .cast_check_classes_only
        );
    }

    #[test]
    fn is_effective_classifies_variants() {
        assert!(SanitizerKind::EffectiveFull.is_effective());
        assert!(SanitizerKind::EffectiveType.is_effective());
        assert!(!SanitizerKind::AddressSanitizer.is_effective());
        assert!(!SanitizerKind::None.is_effective());
    }
}
