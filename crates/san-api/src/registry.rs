//! The string-keyed backend registry.
//!
//! Every sanitizer the reproduction models — the four EffectiveSan
//! variants (full / bounds / type / escapes-off), the uninstrumented
//! baseline, and the eight comparison tools (ASan, Memcheck, LowFat,
//! SoftBound, MPX, TypeSan, HexType, CETS) — is registered here under its
//! stable [`SanitizerKind::name`].
//! Pipelines, bench binaries and workloads construct backends by kind or
//! by name instead of hard-wiring runtime types, so adding a backend means
//! adding one registry entry (plus its [`Sanitizer`] impl).

use std::sync::Arc;

use effective_runtime::RuntimeConfig;
use effective_types::TypeRegistry;

use crate::backend::Sanitizer;
use crate::backends::{BaselineBackend, EffectiveBackend};
use crate::kind::{ParseSanitizerKindError, SanitizerKind};

/// One registered backend: a kind plus its constructor.
#[derive(Clone, Copy, Debug)]
pub struct BackendEntry {
    kind: SanitizerKind,
}

impl BackendEntry {
    /// The backend's kind (the registry key).
    pub fn kind(&self) -> SanitizerKind {
        self.kind
    }

    /// The backend's stable name (parses back via `FromStr`).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Construct the backend over the given type registry.
    pub fn build(&self, types: Arc<TypeRegistry>, config: RuntimeConfig) -> Box<dyn Sanitizer> {
        build(self.kind, types, config)
    }
}

/// Every registered backend, in report-table order.
pub fn registry() -> Vec<BackendEntry> {
    SanitizerKind::ALL
        .into_iter()
        .map(|kind| BackendEntry { kind })
        .collect()
}

/// Construct the backend for `kind` over the given type registry.
pub fn build(
    kind: SanitizerKind,
    types: Arc<TypeRegistry>,
    config: RuntimeConfig,
) -> Box<dyn Sanitizer> {
    if kind.baseline_kind().is_some() {
        Box::new(BaselineBackend::new(kind, types, config))
    } else {
        Box::new(EffectiveBackend::new(kind, types, config))
    }
}

/// Construct a backend by name (see [`SanitizerKind`]'s `FromStr` for the
/// accepted spellings).
pub fn build_by_name(
    name: &str,
    types: Arc<TypeRegistry>,
    config: RuntimeConfig,
) -> Result<Box<dyn Sanitizer>, ParseSanitizerKindError> {
    let kind: SanitizerKind = name.parse()?;
    Ok(build(kind, types, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types() -> Arc<TypeRegistry> {
        Arc::new(TypeRegistry::new())
    }

    #[test]
    fn registry_covers_every_kind_exactly_once() {
        let entries = registry();
        assert_eq!(entries.len(), SanitizerKind::ALL.len());
        for (entry, kind) in entries.iter().zip(SanitizerKind::ALL) {
            assert_eq!(entry.kind(), kind);
            assert_eq!(entry.name(), kind.name());
        }
    }

    #[test]
    fn every_entry_builds_a_backend_of_its_kind() {
        for entry in registry() {
            let backend = entry.build(types(), RuntimeConfig::default());
            assert_eq!(backend.kind(), entry.kind());
            assert!(!backend.halted());
            assert_eq!(backend.stats().total_checks(), 0);
        }
    }

    #[test]
    fn build_by_name_accepts_canonical_names_and_aliases() {
        let backend = build_by_name("EffectiveSan", types(), RuntimeConfig::default()).unwrap();
        assert_eq!(backend.kind(), SanitizerKind::EffectiveFull);
        let backend = build_by_name("asan", types(), RuntimeConfig::default()).unwrap();
        assert_eq!(backend.kind(), SanitizerKind::AddressSanitizer);
        let backend = build_by_name("valgrind", types(), RuntimeConfig::default()).unwrap();
        assert_eq!(backend.kind(), SanitizerKind::Memcheck);
        let backend = build_by_name("mpx", types(), RuntimeConfig::default()).unwrap();
        assert_eq!(backend.kind(), SanitizerKind::Mpx);
        assert!(build_by_name("dataflowsan", types(), RuntimeConfig::default()).is_err());
    }
}
