//! Structured diagnostics returned by [`crate::Sanitizer::finish`].
//!
//! Every backend — EffectiveSan variants and baseline tools alike — renders
//! its findings into the same [`Diagnostic`] shape, so reports can be
//! compared across tools without knowing which runtime produced them.
//! This replaces the previous ad-hoc merging of `ErrorStats` and
//! `BaselineStats` at the pipeline layer.

use std::fmt;
use std::sync::Arc;

use effective_runtime::{Bounds, ErrorKind, ErrorRecord};
use serde::Serialize;

/// One distinct issue found during an instrumented run.
///
/// Mirrors the fields of the paper's error reports (§6.1): the issue class,
/// the static type the program used (`expected`), the object's dynamic
/// type (`observed`), the offset into the allocation, and — where the
/// failing check knew them — the bounds that were violated.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// The issue class (Figure 1 column taxonomy).
    pub kind: ErrorKind,
    /// The static type the program declared at the access/cast site.
    pub expected: String,
    /// The dynamic (allocation) type actually bound to the object.
    pub observed: String,
    /// Byte offset of the access within the allocation (normalised).
    pub offset: u64,
    /// The bounds the access was checked against, when the failing check
    /// had concrete (non-wide) bounds at hand.
    pub bounds: Option<Bounds>,
    /// Source location / instrumentation-site label.
    pub location: Arc<str>,
    /// Free-form detail from the reporting runtime.
    pub detail: String,
}

impl From<&ErrorRecord> for Diagnostic {
    fn from(record: &ErrorRecord) -> Self {
        Diagnostic {
            kind: record.kind,
            expected: record.static_type.clone(),
            observed: record.dynamic_type.clone(),
            offset: record.offset,
            bounds: record.bounds,
            location: record.location.clone(),
            detail: record.detail.clone(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected `{}`, observed `{}` at offset {} ({})",
            self.kind, self.expected, self.observed, self.offset, self.location
        )?;
        if let Some(b) = self.bounds {
            write!(f, " bounds {:#x}..{:#x}", b.lo, b.hi)?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_preserves_fields() {
        let record = ErrorRecord {
            kind: ErrorKind::SubObjectBoundsOverflow,
            static_type: "int".to_string(),
            dynamic_type: "struct account".to_string(),
            offset: 32,
            bounds: Some(Bounds::new(0x1000, 0x1020)),
            location: Arc::from("account.c:4"),
            detail: "overflow into `balance`".to_string(),
        };
        let d = Diagnostic::from(&record);
        assert_eq!(d.kind, ErrorKind::SubObjectBoundsOverflow);
        assert_eq!(d.expected, "int");
        assert_eq!(d.observed, "struct account");
        assert_eq!(d.offset, 32);
        assert_eq!(d.bounds, Some(Bounds::new(0x1000, 0x1020)));
        let rendered = d.to_string();
        assert!(rendered.contains("subobject-bounds-overflow"));
        assert!(rendered.contains("struct account"));
        assert!(rendered.contains("0x1000"));
    }

    #[test]
    fn display_without_bounds_or_detail_is_compact() {
        let d = Diagnostic {
            kind: ErrorKind::UseAfterFree,
            expected: "struct S".to_string(),
            observed: "FREE".to_string(),
            offset: 0,
            bounds: None,
            location: Arc::from("uaf.c:9"),
            detail: String::new(),
        };
        let rendered = d.to_string();
        assert!(rendered.contains("use-after-free"));
        assert!(!rendered.contains("bounds"));
        assert!(!rendered.contains("—"));
    }
}
