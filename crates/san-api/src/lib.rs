//! # san-api
//!
//! The unified sanitizer backend API of the EffectiveSan reproduction.
//!
//! The paper evaluates one tool against a family of others —
//! AddressSanitizer, Valgrind Memcheck, LowFat, SoftBound, Intel MPX,
//! TypeSan, HexType, CETS (Figure 1, §6.2) — all running the same
//! workloads.  This crate makes that comparison architectural rather than
//! ad hoc:
//!
//! * [`Sanitizer`] — the complete instrumentation-hook surface
//!   (allocation lifecycle, type/cast checks, bounds propagation,
//!   per-access checks, reporting) every backend implements;
//! * [`SanStats`] / [`Diagnostic`] — unified counters and structured
//!   findings, comparable across tools;
//! * [`SanitizerKind`] — the registry key, with `FromStr`/`Display` so
//!   backends are selectable by name from CLIs and configs;
//! * [`registry()`]/[`build()`]/[`build_by_name`] — the string-keyed backend
//!   registry producing `Box<dyn Sanitizer>`;
//! * [`PassConfig`] — the per-tool instrumentation configuration consumed
//!   by the `instrument` crate.
//!
//! The VM dispatches every check instruction through a single
//! `Box<dyn Sanitizer>`; adding a new tool is one `Sanitizer` impl plus a
//! registry entry, with no interpreter changes.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use effective_runtime::RuntimeConfig;
//! use effective_types::{Type, TypeRegistry};
//! use lowfat::AllocKind;
//! use san_api::SanitizerKind;
//!
//! let types = Arc::new(TypeRegistry::new());
//! let mut backend =
//!     san_api::build_by_name("EffectiveSan", types, RuntimeConfig::default()).unwrap();
//! assert_eq!(backend.kind(), SanitizerKind::EffectiveFull);
//!
//! let loc: Arc<str> = Arc::from("example");
//! let p = backend.on_alloc(100 * 4, &Type::int(), AllocKind::Heap);
//! // Check-site types are interned once at program-load time; the checks
//! // themselves only carry the resulting ids.
//! let int_id = backend.intern_check_type(&Type::int());
//! let float_id = backend.intern_check_type(&Type::float());
//! let bounds = backend.type_check(p, int_id, &loc);
//! assert_eq!(bounds.width(), 400);
//! assert!(backend.type_check(p, float_id, &loc).is_wide());
//! assert_eq!(backend.finish().len(), 1); // the bad float access
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod backends;
pub mod diagnostic;
pub mod kind;
pub mod registry;

pub use backend::{SanStats, Sanitizer};
pub use backends::{BaselineBackend, EffectiveBackend};
pub use diagnostic::Diagnostic;
pub use kind::{InputCheck, ParseSanitizerKindError, PassConfig, SanitizerKind};
pub use registry::{build, build_by_name, registry, BackendEntry};
