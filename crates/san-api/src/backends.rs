//! The concrete backend implementations behind the registry: the
//! EffectiveSan variants (full / bounds / type / escapes-off, plus the
//! uninstrumented baseline) wrapping [`TypeCheckRuntime`], and the eight
//! comparison tools (ASan, Memcheck, LowFat, SoftBound, MPX, TypeSan,
//! HexType, CETS) wrapping [`BaselineRuntime`] over the same
//! typed-allocator substrate.

use std::sync::Arc;

use baselines::BaselineRuntime;
use effective_runtime::{Bounds, ErrorStats, RuntimeConfig, TypeCheckRuntime};
use effective_types::{Type, TypeId, TypeRegistry};
use lowfat::{AllocKind, FrameMark, Memory, Ptr};

use crate::backend::{SanStats, Sanitizer};
use crate::diagnostic::Diagnostic;
use crate::kind::SanitizerKind;

/// Backend for the EffectiveSan variants (full / bounds / type /
/// escapes-off) and the uninstrumented baseline: a thin adapter over
/// [`TypeCheckRuntime`].
///
/// For [`SanitizerKind::None`] the runtime still provides the typed
/// allocator and simulated memory — the program must execute identically —
/// but the backend reports no findings (the uninstrumented run of
/// Figures 8–10 by definition detects nothing).
#[derive(Debug)]
pub struct EffectiveBackend {
    kind: SanitizerKind,
    runtime: TypeCheckRuntime,
}

impl EffectiveBackend {
    /// Create a backend of the given EffectiveSan variant (or
    /// [`SanitizerKind::None`]).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is one of the baseline comparison tools; those are
    /// built by [`BaselineBackend::new`].
    pub fn new(kind: SanitizerKind, types: Arc<TypeRegistry>, config: RuntimeConfig) -> Self {
        assert!(
            kind.baseline_kind().is_none(),
            "{kind} is a baseline tool, not an EffectiveSan variant"
        );
        EffectiveBackend {
            kind,
            runtime: TypeCheckRuntime::new(types, config),
        }
    }

    /// The wrapped runtime (e.g. for micro-benchmarks poking at internals).
    pub fn runtime(&self) -> &TypeCheckRuntime {
        &self.runtime
    }

    fn reports(&self) -> bool {
        self.kind != SanitizerKind::None
    }
}

impl Sanitizer for EffectiveBackend {
    fn kind(&self) -> SanitizerKind {
        self.kind
    }

    fn memory(&self) -> &Memory {
        &self.runtime.memory
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.runtime.memory
    }

    fn stack_frame_begin(&mut self) -> FrameMark {
        self.runtime.allocator.stack_frame_begin()
    }

    fn stack_frame_end(&mut self, mark: FrameMark) {
        self.runtime.allocator.stack_frame_end(mark);
    }

    fn preload_types(&mut self, alloc_types: &[Type], check_types: &[Type]) {
        self.runtime.preload_types(alloc_types, check_types);
    }

    fn on_alloc(&mut self, size: u64, elem: &Type, kind: AllocKind) -> Ptr {
        self.runtime.type_malloc(size, elem, kind)
    }

    fn on_free(&mut self, ptr: Ptr, location: &Arc<str>) {
        self.runtime.type_free(ptr, location);
    }

    fn on_realloc(&mut self, ptr: Ptr, new_size: u64, elem: &Type, location: &Arc<str>) -> Ptr {
        self.runtime
            .type_realloc(ptr, new_size, elem, AllocKind::Heap, location)
    }

    fn intern_check_type(&mut self, ty: &Type) -> TypeId {
        self.runtime.intern_type(ty)
    }

    fn type_check(&mut self, ptr: Ptr, static_ty: TypeId, location: &Arc<str>) -> Bounds {
        self.runtime.type_check_id(ptr, static_ty, location)
    }

    fn cast_check(&mut self, ptr: Ptr, static_ty: TypeId, location: &Arc<str>) -> Bounds {
        self.runtime.cast_check_id(ptr, static_ty, location)
    }

    fn bounds_get(&mut self, ptr: Ptr) -> Bounds {
        self.runtime.bounds_get(ptr)
    }

    fn bounds_narrow(&mut self, bounds: Bounds, field: Bounds) -> Bounds {
        self.runtime.bounds_narrow(bounds, field)
    }

    fn bounds_check(
        &mut self,
        ptr: Ptr,
        size: u64,
        bounds: Bounds,
        location: &Arc<str>,
        escape: bool,
    ) -> bool {
        self.runtime
            .bounds_check(ptr, size, bounds, location, escape)
    }

    fn access_check(&mut self, _ptr: Ptr, _size: u64, _write: bool, _location: &Arc<str>) -> bool {
        // EffectiveSan has no shadow-memory per-access check; bounds are
        // propagated instead (§4).
        true
    }

    fn stats(&self) -> SanStats {
        SanStats::from(self.runtime.stats())
    }

    fn halted(&self) -> bool {
        self.reports() && self.runtime.halted()
    }

    fn error_stats(&self) -> ErrorStats {
        if self.reports() {
            self.runtime.reporter().stats().clone()
        } else {
            ErrorStats::default()
        }
    }

    fn finish(&mut self) -> Vec<Diagnostic> {
        if self.reports() {
            self.runtime
                .reporter()
                .records()
                .iter()
                .map(Diagnostic::from)
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// Backend for the comparison tools (§6.2): a [`BaselineRuntime`] carrying
/// the tool's own meta data, paired with a [`TypeCheckRuntime`] that acts
/// purely as the typed-allocator / simulated-memory substrate (its checks
/// are never consulted and its findings are never reported).
#[derive(Debug)]
pub struct BaselineBackend {
    kind: SanitizerKind,
    runtime: TypeCheckRuntime,
    baseline: BaselineRuntime,
}

impl BaselineBackend {
    /// Create a backend for one of the baseline comparison tools.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a baseline tool (see
    /// [`SanitizerKind::baseline_kind`]).
    pub fn new(kind: SanitizerKind, types: Arc<TypeRegistry>, config: RuntimeConfig) -> Self {
        let baseline_kind = kind
            .baseline_kind()
            .unwrap_or_else(|| panic!("{kind} is not a baseline comparison tool"));
        BaselineBackend {
            kind,
            runtime: TypeCheckRuntime::new(types.clone(), config),
            baseline: BaselineRuntime::new(baseline_kind, types, config.reporter),
        }
    }

    /// The wrapped baseline runtime.
    pub fn baseline(&self) -> &BaselineRuntime {
        &self.baseline
    }
}

impl Sanitizer for BaselineBackend {
    fn kind(&self) -> SanitizerKind {
        self.kind
    }

    fn memory(&self) -> &Memory {
        &self.runtime.memory
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.runtime.memory
    }

    fn stack_frame_begin(&mut self) -> FrameMark {
        self.runtime.allocator.stack_frame_begin()
    }

    fn stack_frame_end(&mut self, mark: FrameMark) {
        self.runtime.allocator.stack_frame_end(mark);
    }

    fn on_alloc(&mut self, size: u64, elem: &Type, kind: AllocKind) -> Ptr {
        let ptr = self.runtime.type_malloc(size, elem, kind);
        if kind != AllocKind::Legacy {
            self.baseline.on_alloc(ptr, size, Some(elem));
        }
        ptr
    }

    fn on_free(&mut self, ptr: Ptr, location: &Arc<str>) {
        self.baseline.on_free(ptr, location);
        self.runtime.type_free(ptr, location);
    }

    fn on_realloc(&mut self, ptr: Ptr, new_size: u64, elem: &Type, location: &Arc<str>) -> Ptr {
        self.baseline.on_free(ptr, location);
        let new = self
            .runtime
            .type_realloc(ptr, new_size, elem, AllocKind::Heap, location);
        self.baseline.on_alloc(new, new_size, Some(elem));
        new
    }

    fn intern_check_type(&mut self, ty: &Type) -> TypeId {
        // The substrate runtime's interner doubles as the id space for the
        // class-hierarchy checkers, which still need the structural type.
        self.runtime.intern_type(ty)
    }

    fn type_check(&mut self, _ptr: Ptr, _static_ty: TypeId, _location: &Arc<str>) -> Bounds {
        // No comparison tool binds dynamic types to allocations, so the
        // full type check degrades to wide bounds (conservative pass).
        Bounds::WIDE
    }

    fn cast_check(&mut self, ptr: Ptr, static_ty: TypeId, location: &Arc<str>) -> Bounds {
        // Class-hierarchy checkers produce a verdict, not bounds: report
        // through the baseline and return wide bounds uniformly.
        let fallback = Type::void();
        let ty = self.runtime.resolve_type(static_ty).unwrap_or(&fallback);
        self.baseline.cast_check(ptr, ty, location);
        Bounds::WIDE
    }

    fn bounds_get(&mut self, ptr: Ptr) -> Bounds {
        self.baseline.bounds_get(ptr)
    }

    fn bounds_narrow(&mut self, bounds: Bounds, field: Bounds) -> Bounds {
        self.baseline.bounds_narrow(bounds, field)
    }

    fn bounds_check(
        &mut self,
        ptr: Ptr,
        size: u64,
        bounds: Bounds,
        location: &Arc<str>,
        escape: bool,
    ) -> bool {
        self.baseline
            .bounds_check(ptr, size, bounds, location, escape)
    }

    fn access_check(&mut self, ptr: Ptr, size: u64, write: bool, location: &Arc<str>) -> bool {
        self.baseline.access_check(ptr, size, write, location)
    }

    fn stats(&self) -> SanStats {
        let mut stats = SanStats::from(self.runtime.stats());
        stats.merge_baseline(&self.baseline.stats());
        stats
    }

    fn halted(&self) -> bool {
        // Only the tool's own reporter decides abort-after-N: the substrate
        // runtime's findings are never consulted (see the struct docs).
        self.baseline.reporter().halted()
    }

    fn error_stats(&self) -> ErrorStats {
        self.baseline.reporter().stats().clone()
    }

    fn finish(&mut self) -> Vec<Diagnostic> {
        self.baseline
            .reporter()
            .records()
            .iter()
            .map(Diagnostic::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effective_runtime::ErrorKind;

    fn types() -> Arc<TypeRegistry> {
        Arc::new(TypeRegistry::new())
    }

    fn loc() -> Arc<str> {
        Arc::from("test")
    }

    #[test]
    fn uninstrumented_backend_allocates_but_never_reports() {
        let mut backend =
            EffectiveBackend::new(SanitizerKind::None, types(), RuntimeConfig::default());
        let p = backend.on_alloc(64, &Type::int(), AllocKind::Heap);
        backend.on_free(p, &loc());
        backend.on_free(p, &loc()); // double free — invisible to `None`
        assert_eq!(backend.error_stats().distinct_issues, 0);
        assert!(backend.finish().is_empty());
        assert!(!backend.halted());
    }

    #[test]
    fn effective_backend_reports_through_the_trait() {
        let mut backend = EffectiveBackend::new(
            SanitizerKind::EffectiveFull,
            types(),
            RuntimeConfig::default(),
        );
        let p = backend.on_alloc(64, &Type::int(), AllocKind::Heap);
        let int_id = backend.intern_check_type(&Type::int());
        let b = backend.type_check(p, int_id, &loc());
        assert_eq!(b.width(), 64);
        assert!(!backend.bounds_check(p.add(64), 4, b, &loc(), false));
        assert_eq!(backend.error_stats().bounds_issues(), 1);
        let diags = backend.finish();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, ErrorKind::ObjectBoundsOverflow);
        assert_eq!(diags[0].bounds, Some(b));
        assert_eq!(backend.stats().type_checks, 1);
        assert_eq!(backend.stats().bounds_checks, 1);
    }

    #[test]
    fn baseline_backend_routes_checks_to_the_tool() {
        let mut backend = BaselineBackend::new(
            SanitizerKind::AddressSanitizer,
            types(),
            RuntimeConfig::default(),
        );
        let p = backend.on_alloc(32, &Type::int(), AllocKind::Heap);
        // In bounds: fine.  One past the end: lands in the red-zone.
        assert!(backend.access_check(p, 4, false, &loc()));
        assert!(!backend.access_check(p.add(32), 4, true, &loc()));
        assert_eq!(backend.error_stats().bounds_issues(), 1);
        assert_eq!(backend.finish().len(), 1);
        // The substrate's reporter is not consulted.
        assert_eq!(backend.stats().access_checks, 2);
        // type_check is a conservative no-op for baseline tools.
        let float_id = backend.intern_check_type(&Type::float());
        assert!(backend.type_check(p, float_id, &loc()).is_wide());
        assert_eq!(backend.error_stats().type_issues(), 0);
    }

    #[test]
    fn baseline_backend_cast_check_returns_wide_bounds() {
        let mut backend =
            BaselineBackend::new(SanitizerKind::TypeSan, types(), RuntimeConfig::default());
        let p = backend.on_alloc(16, &Type::int(), AllocKind::Heap);
        let int_id = backend.intern_check_type(&Type::int());
        let b = backend.cast_check(p, int_id, &loc());
        assert!(b.is_wide());
        assert_eq!(backend.stats().cast_checks, 1);
    }

    #[test]
    fn memcheck_backend_reports_unaddressable_accesses() {
        let mut backend =
            BaselineBackend::new(SanitizerKind::Memcheck, types(), RuntimeConfig::default());
        let p = backend.on_alloc(32, &Type::int(), AllocKind::Heap);
        assert!(backend.access_check(p, 4, false, &loc()));
        // Far past any red-zone: the bytes were never allocated, so the
        // pure shadow-memory checker still reports.
        assert!(!backend.access_check(p.add(32 + 400), 4, true, &loc()));
        assert_eq!(backend.error_stats().bounds_issues(), 1);
        // Freed memory stays unaddressable.
        backend.on_free(p, &loc());
        assert!(!backend.access_check(p, 4, false, &loc()));
        assert_eq!(backend.error_stats().temporal_issues(), 1);
    }

    #[test]
    fn mpx_backend_counts_bound_table_loads() {
        let mut backend =
            BaselineBackend::new(SanitizerKind::Mpx, types(), RuntimeConfig::default());
        let ptrs: Vec<_> = (0..6)
            .map(|_| backend.on_alloc(16, &Type::int(), AllocKind::Heap))
            .collect();
        for &p in &ptrs {
            assert!(!backend.bounds_get(p).is_wide());
        }
        // Six distinct pointers through four registers: every first touch
        // spills to the bound table.
        assert_eq!(backend.stats().bounds_table_loads, 6);
        assert_eq!(backend.stats().bounds_gets, 6);
    }

    #[test]
    fn escapes_off_backend_is_an_effective_variant() {
        let mut backend = EffectiveBackend::new(
            SanitizerKind::EffectiveEscapesOff,
            types(),
            RuntimeConfig::default(),
        );
        assert_eq!(backend.kind(), SanitizerKind::EffectiveEscapesOff);
        // Full type checking is still active.
        let p = backend.on_alloc(64, &Type::int(), AllocKind::Heap);
        let float_id = backend.intern_check_type(&Type::float());
        assert!(backend.type_check(p, float_id, &loc()).is_wide());
        assert_eq!(backend.error_stats().type_issues(), 1);
    }

    #[test]
    fn legacy_allocations_are_invisible_to_baselines() {
        let mut backend =
            BaselineBackend::new(SanitizerKind::LowFat, types(), RuntimeConfig::default());
        let p = backend.on_alloc(128, &Type::int(), AllocKind::Legacy);
        assert!(backend.bounds_get(p).is_wide());
        let q = backend.on_alloc(128, &Type::int(), AllocKind::Heap);
        assert_eq!(backend.bounds_get(q), Bounds::from_base_size(q, 128));
    }

    #[test]
    fn realloc_moves_baseline_meta_data() {
        let mut backend =
            BaselineBackend::new(SanitizerKind::SoftBound, types(), RuntimeConfig::default());
        let p = backend.on_alloc(16, &Type::int(), AllocKind::Heap);
        let q = backend.on_realloc(p, 64, &Type::int(), &loc());
        assert_eq!(backend.bounds_get(q), Bounds::from_base_size(q, 64));
        // The old block is gone from the tool's records (spatial tools drop
        // freed allocations).
        assert!(p == q || backend.bounds_get(p).is_wide());
    }
}
