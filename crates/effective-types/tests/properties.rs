//! Property-based tests for the type model, layout function and layout
//! hash table.

use proptest::prelude::*;

use effective_types::{
    layout_at, FieldDef, RecordDef, RelBounds, SubObject, Type, TypeInterner, TypeLayout,
    TypeRegistry,
};

/// Build a table together with the interner its keys live in.
fn build(reg: &TypeRegistry, ty: &Type) -> (TypeInterner, TypeLayout) {
    let mut interner = TypeInterner::new();
    let table = TypeLayout::build(reg, &mut interner, ty).unwrap();
    (interner, table)
}

/// A small pool of scalar types used to build random records.
fn arb_scalar() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::char_()),
        Just(Type::short()),
        Just(Type::int()),
        Just(Type::long()),
        Just(Type::float()),
        Just(Type::double()),
        Just(Type::ptr(Type::int())),
        Just(Type::char_ptr()),
        Just(Type::void_ptr()),
    ]
}

/// A random field type: a scalar or a small array of scalars.
fn arb_field_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        arb_scalar(),
        (arb_scalar(), 1u64..8).prop_map(|(t, n)| Type::array(t, n)),
    ]
}

/// A random struct definition with 1..6 fields, registered under `tag`.
fn arb_struct(tag: &'static str) -> impl Strategy<Value = RecordDef> {
    prop::collection::vec(arb_field_type(), 1..6).prop_map(move |tys| {
        let fields = tys
            .into_iter()
            .enumerate()
            .map(|(i, ty)| FieldDef::new(format!("f{i}"), ty))
            .collect();
        RecordDef::struct_(tag, fields)
    })
}

/// A registry holding one random inner struct and one random outer struct
/// that embeds it, plus the allocation type to test against.
fn arb_registry() -> impl Strategy<Value = (TypeRegistry, Type)> {
    (arb_struct("Inner"), arb_struct("Outer")).prop_map(|(inner, mut outer)| {
        let mut reg = TypeRegistry::new();
        reg.define(inner).unwrap();
        // Embed the inner struct somewhere in the outer one.
        outer
            .fields
            .push(FieldDef::new("inner", Type::struct_("Inner")));
        reg.define(outer).unwrap();
        (reg, Type::struct_("Outer"))
    })
}

proptest! {
    /// Rule (a): the allocation type itself is always a sub-object at
    /// offset 0 with delta 0.
    #[test]
    fn rule_a_holds((reg, ty) in arb_registry()) {
        let l = layout_at(&reg, &ty, 0).unwrap();
        prop_assert!(l.contains(&SubObject::new(ty.clone(), 0)));
    }

    /// Rule (b): the allocation type is a sub-object at offset sizeof(T)
    /// with delta sizeof(T).
    #[test]
    fn rule_b_holds((reg, ty) in arb_registry()) {
        let size = reg.size_of(&ty).unwrap();
        let l = layout_at(&reg, &ty, size).unwrap();
        prop_assert!(l.contains(&SubObject::new(ty.clone(), size)));
    }

    /// Every sub-object returned by L lies entirely within the containing
    /// object: its relative bounds never extend below the object base or
    /// above the object end.
    #[test]
    fn subobjects_are_contained((reg, ty) in arb_registry(), k in 0u64..256) {
        let size = reg.size_of(&ty).unwrap();
        let k = k % (size + 1);
        for so in layout_at(&reg, &ty, k).unwrap() {
            let (lo, hi) = so.relative_bounds(&reg).unwrap();
            let abs_lo = k as i64 + lo;
            let abs_hi = k as i64 + hi;
            prop_assert!(abs_lo >= 0, "sub-object {so:?} starts before the object");
            prop_assert!(abs_hi <= size as i64, "sub-object {so:?} ends after the object");
        }
    }

    /// Offsets beyond sizeof(T) yield nothing from the raw layout function.
    #[test]
    fn out_of_bounds_offsets_are_empty((reg, ty) in arb_registry(), extra in 1u64..64) {
        let size = reg.size_of(&ty).unwrap();
        let l = layout_at(&reg, &ty, size + extra).unwrap();
        prop_assert!(l.is_empty());
    }

    /// The layout hash table agrees with the layout function: whenever L
    /// reports a sub-object of element type S at offset k, a lookup of S at
    /// k succeeds (the reverse need not hold because of coercions).
    #[test]
    fn table_is_complete_wrt_layout_function((reg, ty) in arb_registry(), k in 0u64..128) {
        let size = reg.size_of(&ty).unwrap();
        let k = k % size.max(1);
        let (interner, table) = build(&reg, &ty);
        for so in layout_at(&reg, &ty, k).unwrap() {
            let key = so.ty.strip_array().clone();
            prop_assert!(
                table.lookup(&interner, &key, k).is_some(),
                "layout reports {so:?} at offset {k} but the table lookup misses"
            );
        }
    }

    /// Table lookups of the allocation element type at element boundaries
    /// always succeed (with unbounded or wide bounds) — pointers that walk
    /// an array of T never produce spurious type errors.
    #[test]
    fn array_walk_never_type_errors((reg, ty) in arb_registry(), i in 0u64..16) {
        let size = reg.size_of(&ty).unwrap();
        let (interner, table) = build(&reg, &ty);
        let m = table.lookup(&interner, &ty, i * size);
        prop_assert!(m.is_some());
    }

    /// A `double` lookup at offset 1 (misaligned, mid-scalar) never matches
    /// unless the first byte genuinely contains a char-ish sub-object (the
    /// char coercion); it must never match through padding.
    #[test]
    fn misaligned_double_rarely_matches((reg, ty) in arb_registry()) {
        let (interner, table) = build(&reg, &ty);
        if let Some(m) = table.lookup(&interner, &Type::double(), 1) {
            // Only the char coercion can justify this match.
            prop_assert_eq!(m.kind, effective_types::MatchKind::CharCoercion);
        }
    }

    /// Char (byte) access succeeds at every offset of every type.
    #[test]
    fn char_access_always_allowed((reg, ty) in arb_registry(), k in 0u64..64) {
        let size = reg.size_of(&ty).unwrap();
        let (interner, table) = build(&reg, &ty);
        prop_assert!(table
            .lookup(&interner, &Type::char_(), k % size.max(1))
            .is_some());
    }

    /// sizeof is linear over arrays.
    #[test]
    fn sizeof_array_is_linear(n in 1u64..1000) {
        let reg = TypeRegistry::new();
        let t = Type::array(Type::int(), n);
        prop_assert_eq!(reg.size_of(&t).unwrap(), 4 * n);
    }

    /// Struct member offsets are monotonically non-decreasing and aligned.
    #[test]
    fn member_offsets_are_aligned((reg, ty) in arb_registry()) {
        let tag = ty.record_tag().unwrap();
        let layout = reg.layout(tag).unwrap();
        let mut prev_end = 0;
        for m in &layout.members {
            let align = reg.align_of(&m.ty).unwrap();
            prop_assert_eq!(m.offset % align, 0, "member {} misaligned", m.name);
            prop_assert!(m.offset >= prev_end, "member {} overlaps its predecessor", m.name);
            prev_end = m.offset + m.size;
        }
        prop_assert!(layout.size >= prev_end);
        prop_assert_eq!(layout.size % layout.align, 0);
    }

    /// RelBounds intersection is commutative, idempotent and narrowing.
    #[test]
    fn relbounds_intersection_properties(a_lo in -64i64..64, a_w in 0i64..64, b_lo in -64i64..64, b_w in 0i64..64) {
        let a = RelBounds::new(a_lo, a_lo + a_w);
        let b = RelBounds::new(b_lo, b_lo + b_w);
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&a), a);
        let i = a.intersect(&b);
        prop_assert!(i.width() <= a.width());
        prop_assert!(i.width() <= b.width());
    }
}
