//! The type registry: nominal record definitions and their memory layout.
//!
//! C/C++ record types (`struct`/`class`/`union`) are nominal; a
//! [`Type::Record`](crate::Type) only names the tag.  The [`TypeRegistry`]
//! owns the definitions and computes a concrete [`RecordLayout`] for each:
//! member offsets, size, alignment, virtual-table pointers for polymorphic
//! classes, base-class sub-objects, and flexible array members (FAMs).
//!
//! The layout rules are a simplified Itanium/SysV model sufficient for the
//! paper's evaluation:
//!
//! * members are laid out in declaration order, each aligned to its natural
//!   alignment; the record is padded to its maximal member alignment;
//! * base classes are embedded members laid out before the derived class's
//!   own fields (the paper: "we consider any base class to be an implicit
//!   embedded member");
//! * a polymorphic class (one that declares virtual methods and has no
//!   polymorphic primary base) gets an 8-byte virtual-table pointer at
//!   offset 0, typed as an array of generic function pointers (§6);
//! * unions place every member at offset 0 (Fig. 2 rule (g));
//! * a flexible array member `U member[]` is laid out as `U member[1]`
//!   (§5), and the registry records its element type so the layout table can
//!   apply the FAM offset normalisation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::types::{RecordKind, Type};

/// Error produced when defining or querying record types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A record tag was referenced but never defined.
    UndefinedRecord(String),
    /// A record tag was defined twice with different definitions.
    Redefinition(String),
    /// A member has a type whose size cannot be computed (e.g. `void`, an
    /// incomplete array in a non-final position, or a function type).
    IncompleteMember {
        /// Record being defined.
        record: String,
        /// Offending member name.
        member: String,
    },
    /// A base class is not a struct/class record.
    InvalidBase {
        /// Record being defined.
        record: String,
        /// Offending base tag.
        base: String,
    },
    /// The size of an incomplete type was requested.
    IncompleteType(String),
    /// A dense type id was never issued by the interner in use.
    UnresolvedTypeId(u32),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UndefinedRecord(tag) => write!(f, "undefined record type `{tag}`"),
            TypeError::Redefinition(tag) => write!(f, "conflicting redefinition of `{tag}`"),
            TypeError::IncompleteMember { record, member } => {
                write!(f, "member `{member}` of `{record}` has incomplete type")
            }
            TypeError::InvalidBase { record, base } => {
                write!(f, "`{base}` is not a valid base class of `{record}`")
            }
            TypeError::IncompleteType(t) => write!(f, "size of incomplete type `{t}` requested"),
            TypeError::UnresolvedTypeId(id) => {
                write!(f, "type id #{id} was never interned")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// A field in a record definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type.  An [`Type::IncompleteArray`] in the final position of a
    /// struct declares a flexible array member.
    pub ty: Type,
}

impl FieldDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        FieldDef {
            name: name.into(),
            ty,
        }
    }
}

/// A base class of a C++ class definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseDef {
    /// Tag of the base record (must be a struct/class).
    pub tag: String,
    /// Whether this is a virtual base.  Virtual bases are laid out once, at
    /// the end of the most-derived object (simplified model).
    pub virtual_base: bool,
}

impl BaseDef {
    /// A non-virtual base.
    pub fn new(tag: impl Into<String>) -> Self {
        BaseDef {
            tag: tag.into(),
            virtual_base: false,
        }
    }

    /// A virtual base.
    pub fn virtual_(tag: impl Into<String>) -> Self {
        BaseDef {
            tag: tag.into(),
            virtual_base: true,
        }
    }
}

/// A record (struct/class/union) definition as written by the programmer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordDef {
    /// The record tag.
    pub tag: String,
    /// struct / class / union.
    pub kind: RecordKind,
    /// Base classes (empty for C structs and unions).
    pub bases: Vec<BaseDef>,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Whether the record declares (or overrides) virtual methods.
    pub has_virtual_methods: bool,
}

impl RecordDef {
    /// A plain C struct definition.
    pub fn struct_(tag: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        RecordDef {
            tag: tag.into(),
            kind: RecordKind::Struct,
            bases: Vec::new(),
            fields,
            has_virtual_methods: false,
        }
    }

    /// A C union definition.
    pub fn union_(tag: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        RecordDef {
            tag: tag.into(),
            kind: RecordKind::Union,
            bases: Vec::new(),
            fields,
            has_virtual_methods: false,
        }
    }

    /// A C++ class definition.
    pub fn class(
        tag: impl Into<String>,
        bases: Vec<BaseDef>,
        fields: Vec<FieldDef>,
        has_virtual_methods: bool,
    ) -> Self {
        RecordDef {
            tag: tag.into(),
            kind: RecordKind::Class,
            bases,
            fields,
            has_virtual_methods,
        }
    }

    /// The [`Type`] naming this record.
    pub fn ty(&self) -> Type {
        Type::Record(self.kind, Arc::from(self.tag.as_str()))
    }
}

/// Why a member exists in a computed layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberOrigin {
    /// An ordinary declared field.
    Field,
    /// An embedded base-class sub-object.
    Base,
    /// An embedded virtual base-class sub-object.
    VirtualBase,
    /// The virtual-table pointer of a polymorphic class.
    VTablePointer,
    /// A flexible array member, materialised as a one-element array.
    FlexibleArray,
}

/// One member of a computed record layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberLayout {
    /// Member name (base-class members are named after their tag, the
    /// virtual-table pointer is named `__vptr`).
    pub name: String,
    /// The member's type.  For FAMs this is the materialised `U[1]` type.
    pub ty: Type,
    /// Offset from the start of the record, in bytes.
    pub offset: u64,
    /// Size of the member, in bytes.
    pub size: u64,
    /// Why the member exists.
    pub origin: MemberOrigin,
}

/// The computed layout of a record type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLayout {
    /// The record tag.
    pub tag: String,
    /// struct / class / union.
    pub kind: RecordKind,
    /// Members (fields, embedded bases, vptr, FAM) with their offsets.
    pub members: Vec<MemberLayout>,
    /// Total size in bytes, including trailing padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Element type of the flexible array member, if the record has one.
    pub flexible_element: Option<Type>,
    /// True if the class is polymorphic (has a virtual-table pointer
    /// somewhere in its layout).
    pub polymorphic: bool,
}

impl RecordLayout {
    /// Offset of the named member (standard `offsetof`).
    pub fn offset_of(&self, member: &str) -> Option<u64> {
        self.members
            .iter()
            .find(|m| m.name == member)
            .map(|m| m.offset)
    }

    /// The member layout entry with the given name.
    pub fn member(&self, name: &str) -> Option<&MemberLayout> {
        self.members.iter().find(|m| m.name == name)
    }

    /// Iterate over the direct base-class sub-objects.
    pub fn bases(&self) -> impl Iterator<Item = &MemberLayout> {
        self.members
            .iter()
            .filter(|m| matches!(m.origin, MemberOrigin::Base | MemberOrigin::VirtualBase))
    }
}

/// The registry of record definitions and computed layouts.
///
/// A registry is the single source of truth for `sizeof`, `alignof`,
/// `offsetof` and the layout function [`layout_at`](crate::layout::layout_at).
#[derive(Clone, Debug, Default)]
pub struct TypeRegistry {
    defs: HashMap<String, RecordDef>,
    layouts: HashMap<String, Arc<RecordLayout>>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a record type, computing its layout eagerly.
    ///
    /// Returns an error if the tag is already defined with a *different*
    /// definition (identical redefinitions are accepted, mirroring how the
    /// same header may be compiled into many modules), if a member type is
    /// incomplete, or if a base class is unknown.
    pub fn define(&mut self, def: RecordDef) -> Result<Type, TypeError> {
        if let Some(existing) = self.defs.get(&def.tag) {
            if *existing != def {
                return Err(TypeError::Redefinition(def.tag.clone()));
            }
            return Ok(def.ty());
        }
        let layout = self.compute_layout(&def)?;
        let ty = def.ty();
        self.layouts.insert(def.tag.clone(), Arc::new(layout));
        self.defs.insert(def.tag.clone(), def);
        Ok(ty)
    }

    /// Define a record, replacing any previous definition with the same tag.
    ///
    /// This models the `gcc` finding from §6.1 ("incompatible definitions for
    /// the same type"): translation units may genuinely disagree.  The most
    /// recent definition wins for layout purposes.
    pub fn define_or_replace(&mut self, def: RecordDef) -> Result<Type, TypeError> {
        let layout = self.compute_layout(&def)?;
        let ty = def.ty();
        self.layouts.insert(def.tag.clone(), Arc::new(layout));
        self.defs.insert(def.tag.clone(), def);
        Ok(ty)
    }

    /// Look up a record definition by tag.
    pub fn definition(&self, tag: &str) -> Option<&RecordDef> {
        self.defs.get(tag)
    }

    /// Look up a computed record layout by tag.
    pub fn layout(&self, tag: &str) -> Result<&Arc<RecordLayout>, TypeError> {
        self.layouts
            .get(tag)
            .ok_or_else(|| TypeError::UndefinedRecord(tag.to_string()))
    }

    /// Iterate over all defined record tags.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(|s| s.as_str())
    }

    /// Number of defined record types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no records are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// `sizeof(ty)` in bytes.
    ///
    /// Incomplete arrays, `void` and function types have no size and yield
    /// [`TypeError::IncompleteType`].  The `FREE` type has size 1 so that the
    /// layout machinery treats every offset of a freed object uniformly.
    pub fn size_of(&self, ty: &Type) -> Result<u64, TypeError> {
        match ty {
            Type::Prim(p) => {
                if p.size() == 0 {
                    Err(TypeError::IncompleteType(ty.to_string()))
                } else {
                    Ok(p.size())
                }
            }
            Type::Enum(_) => Ok(4),
            Type::Pointer(_) => Ok(8),
            Type::Function(_) => Err(TypeError::IncompleteType(ty.to_string())),
            Type::Array(e, n) => Ok(self.size_of(e)?.saturating_mul(*n)),
            Type::IncompleteArray(_) => Err(TypeError::IncompleteType(ty.to_string())),
            Type::Record(_, tag) => Ok(self.layout(tag)?.size),
            Type::Free => Ok(1),
        }
    }

    /// `alignof(ty)` in bytes.
    pub fn align_of(&self, ty: &Type) -> Result<u64, TypeError> {
        match ty {
            Type::Prim(p) => Ok(p.align()),
            Type::Enum(_) => Ok(4),
            Type::Pointer(_) | Type::Function(_) => Ok(8),
            Type::Array(e, _) | Type::IncompleteArray(e) => self.align_of(e),
            Type::Record(_, tag) => Ok(self.layout(tag)?.align),
            Type::Free => Ok(1),
        }
    }

    /// `offsetof(record, member)` in bytes.
    pub fn offset_of(&self, record_tag: &str, member: &str) -> Result<u64, TypeError> {
        let layout = self.layout(record_tag)?;
        layout
            .offset_of(member)
            .ok_or_else(|| TypeError::UndefinedRecord(format!("{record_tag}::{member}")))
    }

    /// Whether the given type is complete (has a known size).
    pub fn is_complete(&self, ty: &Type) -> bool {
        self.size_of(ty).is_ok()
    }

    fn compute_layout(&self, def: &RecordDef) -> Result<RecordLayout, TypeError> {
        let mut members = Vec::new();
        let mut size: u64 = 0;
        let mut align: u64 = 1;
        let mut polymorphic = false;
        let mut flexible_element = None;

        let place = |members: &mut Vec<MemberLayout>,
                     size: &mut u64,
                     align: &mut u64,
                     name: String,
                     ty: Type,
                     msize: u64,
                     malign: u64,
                     origin: MemberOrigin,
                     is_union: bool| {
            let offset = if is_union { 0 } else { round_up(*size, malign) };
            members.push(MemberLayout {
                name,
                ty,
                offset,
                size: msize,
                origin,
            });
            if is_union {
                *size = (*size).max(msize);
            } else {
                *size = offset + msize;
            }
            *align = (*align).max(malign);
        };

        let is_union = def.kind == RecordKind::Union;

        // Virtual-table pointer: a class that declares virtual methods and
        // whose primary (first non-virtual) base is not already polymorphic
        // gets a vptr at offset 0.
        let primary_base_polymorphic = def
            .bases
            .iter()
            .find(|b| !b.virtual_base)
            .and_then(|b| self.layouts.get(&b.tag))
            .map(|l| l.polymorphic)
            .unwrap_or(false);
        if def.has_virtual_methods && !primary_base_polymorphic && !is_union {
            let vptr_ty = Type::ptr(Type::incomplete_array(Type::generic_fn_ptr()));
            place(
                &mut members,
                &mut size,
                &mut align,
                "__vptr".to_string(),
                vptr_ty,
                8,
                8,
                MemberOrigin::VTablePointer,
                false,
            );
            polymorphic = true;
        }

        // Non-virtual bases, in order.
        for base in def.bases.iter().filter(|b| !b.virtual_base) {
            let bl = self
                .layouts
                .get(&base.tag)
                .ok_or_else(|| TypeError::InvalidBase {
                    record: def.tag.clone(),
                    base: base.tag.clone(),
                })?
                .clone();
            if bl.kind == RecordKind::Union {
                return Err(TypeError::InvalidBase {
                    record: def.tag.clone(),
                    base: base.tag.clone(),
                });
            }
            polymorphic |= bl.polymorphic;
            let bty = Type::Record(bl.kind, Arc::from(base.tag.as_str()));
            place(
                &mut members,
                &mut size,
                &mut align,
                base.tag.clone(),
                bty,
                bl.size,
                bl.align,
                MemberOrigin::Base,
                is_union,
            );
        }

        // Declared fields.
        let nfields = def.fields.len();
        for (i, field) in def.fields.iter().enumerate() {
            let is_last = i + 1 == nfields;
            match &field.ty {
                Type::IncompleteArray(elem) if is_last && !is_union => {
                    // Flexible array member: treated as a one-element array.
                    let esize = self
                        .size_of(elem)
                        .map_err(|_| TypeError::IncompleteMember {
                            record: def.tag.clone(),
                            member: field.name.clone(),
                        })?;
                    let ealign = self.align_of(elem)?;
                    let fam_ty = Type::Array(elem.clone(), 1);
                    place(
                        &mut members,
                        &mut size,
                        &mut align,
                        field.name.clone(),
                        fam_ty,
                        esize,
                        ealign,
                        MemberOrigin::FlexibleArray,
                        false,
                    );
                    flexible_element = Some(elem.as_ref().clone());
                }
                ty => {
                    let msize = self.size_of(ty).map_err(|_| TypeError::IncompleteMember {
                        record: def.tag.clone(),
                        member: field.name.clone(),
                    })?;
                    let malign = self.align_of(ty)?;
                    place(
                        &mut members,
                        &mut size,
                        &mut align,
                        field.name.clone(),
                        ty.clone(),
                        msize,
                        malign,
                        MemberOrigin::Field,
                        is_union,
                    );
                }
            }
        }

        // Virtual bases at the end of the object (simplified model).
        for base in def.bases.iter().filter(|b| b.virtual_base) {
            let bl = self
                .layouts
                .get(&base.tag)
                .ok_or_else(|| TypeError::InvalidBase {
                    record: def.tag.clone(),
                    base: base.tag.clone(),
                })?
                .clone();
            polymorphic |= bl.polymorphic;
            let bty = Type::Record(bl.kind, Arc::from(base.tag.as_str()));
            place(
                &mut members,
                &mut size,
                &mut align,
                base.tag.clone(),
                bty,
                bl.size,
                bl.align,
                MemberOrigin::VirtualBase,
                is_union,
            );
        }

        // An empty record still occupies one byte (C++ rule; practical for C
        // too since zero-sized allocations are rounded up anyway).
        let raw_size = if members.is_empty() { 1 } else { size };
        let size = round_up(raw_size.max(1), align);

        Ok(RecordLayout {
            tag: def.tag.clone(),
            kind: def.kind,
            members,
            size,
            align,
            flexible_element,
            polymorphic,
        })
    }
}

fn round_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1 || align == 16);
    if align <= 1 {
        return value;
    }
    value.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example from the paper (Example 1):
    /// ```c
    /// struct S { int a[3]; char *s; };
    /// struct T { float f; struct S t; };
    /// ```
    pub fn paper_registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::char_ptr()),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S")),
            ],
        ))
        .unwrap();
        reg
    }

    #[test]
    fn paper_example_struct_layout() {
        let reg = paper_registry();
        let s = reg.layout("S").unwrap();
        assert_eq!(s.size, 24); // int[3] (12) + pad (4) + char* (8)
        assert_eq!(s.align, 8);
        assert_eq!(s.offset_of("a"), Some(0));
        assert_eq!(s.offset_of("s"), Some(16));

        let t = reg.layout("T").unwrap();
        // float (4) + pad (4)?  No: S has align 8, so t at offset 8?  The
        // paper's Example 2 places `t` at offset 4, which implies an align-4
        // model for S there (its table uses offset 16 for `s` relative to
        // p).  We follow the real SysV layout here; the layout-function unit
        // tests use a paper-faithful variant with `long`-free members.
        assert_eq!(t.offset_of("f"), Some(0));
        assert_eq!(t.offset_of("t"), Some(8));
        assert_eq!(t.size, 32);
    }

    #[test]
    fn union_members_all_at_offset_zero() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::union_(
            "U",
            vec![
                FieldDef::new("a", Type::array(Type::float(), 10)),
                FieldDef::new("b", Type::array(Type::float(), 20)),
                FieldDef::new("i", Type::int()),
            ],
        ))
        .unwrap();
        let u = reg.layout("U").unwrap();
        for m in &u.members {
            assert_eq!(m.offset, 0);
        }
        assert_eq!(u.size, 80);
        assert_eq!(u.align, 4);
    }

    #[test]
    fn class_with_base_embeds_base_at_offset_zero() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::class(
            "Base",
            vec![],
            vec![
                FieldDef::new("x", Type::int()),
                FieldDef::new("y", Type::float()),
            ],
            false,
        ))
        .unwrap();
        reg.define(RecordDef::class(
            "Derived",
            vec![BaseDef::new("Base")],
            vec![FieldDef::new("z", Type::char_())],
            false,
        ))
        .unwrap();
        let d = reg.layout("Derived").unwrap();
        assert_eq!(d.offset_of("Base"), Some(0));
        assert_eq!(d.offset_of("z"), Some(8));
        assert_eq!(d.size, 12);
        assert_eq!(d.bases().count(), 1);
    }

    #[test]
    fn polymorphic_class_gets_vptr() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::class(
            "Grammar",
            vec![],
            vec![FieldDef::new("kind", Type::int())],
            true,
        ))
        .unwrap();
        let g = reg.layout("Grammar").unwrap();
        assert!(g.polymorphic);
        assert_eq!(g.offset_of("__vptr"), Some(0));
        assert_eq!(g.offset_of("kind"), Some(8));
        assert_eq!(g.size, 16);

        // A derived polymorphic class re-uses the base's vptr.
        reg.define(RecordDef::class(
            "SchemaGrammar",
            vec![BaseDef::new("Grammar")],
            vec![FieldDef::new("extra", Type::double())],
            true,
        ))
        .unwrap();
        let sg = reg.layout("SchemaGrammar").unwrap();
        assert!(sg.polymorphic);
        assert_eq!(sg.offset_of("__vptr"), None);
        assert_eq!(sg.offset_of("Grammar"), Some(0));
        assert_eq!(sg.offset_of("extra"), Some(16));
    }

    #[test]
    fn virtual_base_is_laid_out_at_end() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::class(
            "VBase",
            vec![],
            vec![FieldDef::new("v", Type::int())],
            false,
        ))
        .unwrap();
        reg.define(RecordDef::class(
            "Mid",
            vec![BaseDef::virtual_("VBase")],
            vec![FieldDef::new("m", Type::int())],
            false,
        ))
        .unwrap();
        let mid = reg.layout("Mid").unwrap();
        assert_eq!(mid.offset_of("m"), Some(0));
        assert_eq!(mid.offset_of("VBase"), Some(4));
    }

    #[test]
    fn flexible_array_member_is_materialised() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Packet",
            vec![
                FieldDef::new("len", Type::int()),
                FieldDef::new("data", Type::incomplete_array(Type::char_())),
            ],
        ))
        .unwrap();
        let p = reg.layout("Packet").unwrap();
        assert_eq!(p.flexible_element, Some(Type::char_()));
        let fam = p.member("data").unwrap();
        assert_eq!(fam.origin, MemberOrigin::FlexibleArray);
        assert_eq!(fam.ty, Type::array(Type::char_(), 1));
        assert_eq!(p.size, 8);
    }

    #[test]
    fn sizeof_and_alignof_basic_types() {
        let reg = paper_registry();
        assert_eq!(reg.size_of(&Type::int()).unwrap(), 4);
        assert_eq!(reg.size_of(&Type::ptr(Type::struct_("S"))).unwrap(), 8);
        assert_eq!(reg.size_of(&Type::array(Type::int(), 100)).unwrap(), 400);
        assert_eq!(reg.size_of(&Type::struct_("S")).unwrap(), 24);
        assert_eq!(reg.align_of(&Type::struct_("S")).unwrap(), 8);
        assert_eq!(reg.size_of(&Type::enum_("E")).unwrap(), 4);
        assert_eq!(reg.size_of(&Type::Free).unwrap(), 1);
        assert!(reg.size_of(&Type::void()).is_err());
        assert!(reg.size_of(&Type::incomplete_array(Type::int())).is_err());
    }

    #[test]
    fn identical_redefinition_is_accepted_but_conflicting_is_not() {
        let mut reg = TypeRegistry::new();
        let def = RecordDef::struct_("S", vec![FieldDef::new("x", Type::int())]);
        reg.define(def.clone()).unwrap();
        assert!(reg.define(def).is_ok());
        let conflicting = RecordDef::struct_("S", vec![FieldDef::new("x", Type::float())]);
        assert_eq!(
            reg.define(conflicting.clone()),
            Err(TypeError::Redefinition("S".to_string()))
        );
        // define_or_replace models gcc's incompatible-definition finding.
        reg.define_or_replace(conflicting).unwrap();
        assert_eq!(
            reg.layout("S").unwrap().member("x").unwrap().ty,
            Type::float()
        );
    }

    #[test]
    fn undefined_record_size_errors() {
        let reg = TypeRegistry::new();
        assert!(matches!(
            reg.size_of(&Type::struct_("Nope")),
            Err(TypeError::UndefinedRecord(_))
        ));
    }

    #[test]
    fn empty_record_has_size_one() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_("Empty", vec![])).unwrap();
        assert_eq!(reg.layout("Empty").unwrap().size, 1);
    }
}
