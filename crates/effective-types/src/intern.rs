//! Type interning: dense [`TypeId`]s for O(1) layout-table keys.
//!
//! The paper's cost model assumes every `type_check` is a single layout
//! hash-table probe.  Keying that table by structural [`Type`] values makes
//! each probe pay for a deep structural hash plus a clone of the key; the
//! interner removes both by mapping every canonical (array-stripped) type
//! to a dense `u32` id exactly once.  After interning, the hot path hashes
//! only `(u32, u64)` pairs and the runtime's `META` headers store the same
//! dense ids.
//!
//! Well-known types get fixed ids ([`TypeId::UNTYPED`], [`TypeId::FREE`],
//! [`TypeId::CHAR`], [`TypeId::VOID_PTR`]) so the coercion lookups of §5 —
//! the second `(T, char, k)` probe and the `void *` wildcard probe — need
//! no hashing at all.
//!
//! Alongside the id, the interner records the [`TypeTraits`] every lookup
//! consults (pointer? character? `void`? …) in a flat vector, so the
//! id-keyed lookup path never touches the structural type again.

use std::collections::HashMap;
use std::fmt;

use crate::types::Type;

/// A dense identifier for an interned (canonical, array-stripped) type.
///
/// Ids are never reused within an interner, so an id observed once — e.g.
/// stored in an allocation's `META` header or in a per-site check cache —
/// always denotes the same type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// `void`, doubling as the runtime's "no type bound" sentinel: untyped
    /// (foreign) allocations read back zeroed `META` words.
    pub const UNTYPED: TypeId = TypeId(0);
    /// The special `FREE` type bound to deallocated memory.
    pub const FREE: TypeId = TypeId(1);
    /// `char` — the key of the paper's second (`char[]` coercion) lookup.
    pub const CHAR: TypeId = TypeId(2);
    /// `void *` — the key of the pointer-wildcard coercion lookup.
    pub const VOID_PTR: TypeId = TypeId(3);

    /// The raw dense id.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from its raw value (e.g. a `META` header word).
    /// The result may be dangling; [`TypeInterner::resolve`] returns `None`
    /// for ids the interner never issued.
    pub fn from_raw(raw: u32) -> TypeId {
        TypeId(raw)
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The per-type predicates the layout-table lookup consults, precomputed at
/// intern time so the id-keyed hot path is branch-and-mask only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TypeTraits(u8);

impl TypeTraits {
    const POINTER: u8 = 1 << 0;
    const VOID_POINTER: u8 = 1 << 1;
    const CHARACTER: u8 = 1 << 2;
    const VOID: u8 = 1 << 3;
    const FREE: u8 = 1 << 4;

    /// Compute the traits of a (canonical) type.
    pub fn of(ty: &Type) -> TypeTraits {
        let mut bits = 0;
        if ty.is_pointer() {
            bits |= Self::POINTER;
        }
        if ty.is_void_pointer() {
            bits |= Self::VOID_POINTER;
        }
        if ty.is_character() {
            bits |= Self::CHARACTER;
        }
        if ty.is_void() {
            bits |= Self::VOID;
        }
        if ty.is_free() {
            bits |= Self::FREE;
        }
        TypeTraits(bits)
    }

    /// Is the type a pointer?
    pub fn is_pointer(self) -> bool {
        self.0 & Self::POINTER != 0
    }

    /// Is the type `void *`?
    pub fn is_void_pointer(self) -> bool {
        self.0 & Self::VOID_POINTER != 0
    }

    /// Is the type a character type (participates in `char[]` coercion)?
    pub fn is_character(self) -> bool {
        self.0 & Self::CHARACTER != 0
    }

    /// Is the type `void`?
    pub fn is_void(self) -> bool {
        self.0 & Self::VOID != 0
    }

    /// Is the type the special `FREE` type?
    pub fn is_free(self) -> bool {
        self.0 & Self::FREE != 0
    }
}

/// The interner: canonical types ⇄ dense [`TypeId`]s plus cached
/// [`TypeTraits`].
///
/// Types are canonicalised with [`Type::strip_array`] before interning,
/// matching the layout-table convention that both allocation and static
/// types are element types (§4 footnote 3).
#[derive(Debug)]
pub struct TypeInterner {
    ids: HashMap<Type, TypeId>,
    types: Vec<Type>,
    traits: Vec<TypeTraits>,
}

impl TypeInterner {
    /// An interner pre-seeded with the well-known ids.
    pub fn new() -> Self {
        let mut interner = TypeInterner {
            ids: HashMap::new(),
            types: Vec::new(),
            traits: Vec::new(),
        };
        // Order matters: these must land on the fixed `TypeId` constants.
        assert_eq!(interner.intern(&Type::void()), TypeId::UNTYPED);
        assert_eq!(interner.intern(&Type::Free), TypeId::FREE);
        assert_eq!(interner.intern(&Type::char_()), TypeId::CHAR);
        assert_eq!(interner.intern(&Type::void_ptr()), TypeId::VOID_PTR);
        interner
    }

    /// Intern a type (canonicalising with [`Type::strip_array`]), returning
    /// its dense id.  Idempotent: the same canonical type always returns
    /// the same id.
    pub fn intern(&mut self, ty: &Type) -> TypeId {
        let key = ty.strip_array();
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(key.clone());
        self.traits.push(TypeTraits::of(key));
        self.ids.insert(key.clone(), id);
        id
    }

    /// The id of a type, if it has been interned (no insertion).
    pub fn get(&self, ty: &Type) -> Option<TypeId> {
        self.ids.get(ty.strip_array()).copied()
    }

    /// The canonical type behind an id, if the id was issued by this
    /// interner.
    pub fn resolve(&self, id: TypeId) -> Option<&Type> {
        self.types.get(id.index())
    }

    /// The precomputed traits of an interned id (default/empty traits for
    /// ids this interner never issued).
    pub fn traits(&self, id: TypeId) -> TypeTraits {
        self.traits.get(id.index()).copied().unwrap_or_default()
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if nothing beyond the well-known ids could ever be interned —
    /// the interner pre-seeds four ids, so this is never true in practice
    /// but kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

impl Default for TypeInterner {
    fn default() -> Self {
        TypeInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_ids_are_fixed() {
        let interner = TypeInterner::new();
        assert_eq!(interner.get(&Type::void()), Some(TypeId::UNTYPED));
        assert_eq!(interner.get(&Type::Free), Some(TypeId::FREE));
        assert_eq!(interner.get(&Type::char_()), Some(TypeId::CHAR));
        assert_eq!(interner.get(&Type::void_ptr()), Some(TypeId::VOID_PTR));
        assert_eq!(interner.len(), 4);
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = TypeInterner::new();
        let a = interner.intern(&Type::int());
        let b = interner.intern(&Type::int());
        assert_eq!(a, b);
        assert_eq!(a.raw(), 4);
        let c = interner.intern(&Type::struct_("S"));
        assert_eq!(c.raw(), 5);
        assert_eq!(interner.resolve(c), Some(&Type::struct_("S")));
        assert_eq!(interner.resolve(TypeId::from_raw(99)), None);
    }

    #[test]
    fn interning_strips_arrays() {
        let mut interner = TypeInterner::new();
        let a = interner.intern(&Type::array(Type::int(), 100));
        let b = interner.intern(&Type::incomplete_array(Type::int()));
        let c = interner.intern(&Type::int());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(interner.resolve(a), Some(&Type::int()));
    }

    #[test]
    fn traits_match_type_predicates() {
        let mut interner = TypeInterner::new();
        let ip = interner.intern(&Type::ptr(Type::int()));
        assert!(interner.traits(ip).is_pointer());
        assert!(!interner.traits(ip).is_void_pointer());
        let vp = interner.traits(TypeId::VOID_PTR);
        assert!(vp.is_pointer() && vp.is_void_pointer());
        assert!(interner.traits(TypeId::CHAR).is_character());
        assert!(interner.traits(TypeId::UNTYPED).is_void());
        assert!(interner.traits(TypeId::FREE).is_free());
        // Dangling ids report empty traits.
        assert_eq!(
            interner.traits(TypeId::from_raw(1000)),
            TypeTraits::default()
        );
    }

    #[test]
    fn get_does_not_insert() {
        let interner = TypeInterner::new();
        assert_eq!(interner.get(&Type::double()), None);
        assert_eq!(interner.len(), 4);
    }
}
