//! # effective-types
//!
//! The C/C++ dynamic type model underlying **EffectiveSan** (Duck & Yap,
//! *EffectiveSan: Type and Memory Error Detection using Dynamically Typed
//! C/C++*, PLDI 2018).
//!
//! This crate provides:
//!
//! * [`Type`] — a qualifier-free representation of every standard C/C++
//!   type (fundamental types, enums, pointers, function pointers, arrays,
//!   structs, classes, unions) plus the special [`Type::Free`] type bound to
//!   deallocated memory (paper §3);
//! * [`TypeRegistry`] — nominal record definitions with computed layouts
//!   (`sizeof`, `alignof`, `offsetof`, base-class embedding, vtable
//!   pointers, flexible array members);
//! * [`layout_at`] — the layout function `L` of Figure 2, mapping an
//!   allocation type and byte offset to the set of valid sub-objects;
//! * [`TypeLayout`] / [`LayoutTable`] — the O(1) layout hash table of §5
//!   with offset normalisation, tie-breaking and the `char[]` / `void *`
//!   coercion rules;
//! * [`TypeInterner`] / [`TypeId`] — the interning layer that keys the
//!   layout tables by dense ids, so a lookup hashes a `(u32, u64)` pair
//!   instead of deep-hashing (and cloning) a structural type.
//!
//! Everything here is pure data and pure functions; the runtime that binds
//! types to allocations lives in the `effective-runtime` crate.
//!
//! ## Example
//!
//! ```
//! use effective_types::{FieldDef, RecordDef, Type, TypeInterner, TypeLayout, TypeRegistry};
//!
//! // struct account { int number[8]; float balance; };
//! let mut registry = TypeRegistry::new();
//! registry
//!     .define(RecordDef::struct_(
//!         "account",
//!         vec![
//!             FieldDef::new("number", Type::array(Type::int(), 8)),
//!             FieldDef::new("balance", Type::float()),
//!         ],
//!     ))
//!     .unwrap();
//!
//! let mut interner = TypeInterner::new();
//! let table = TypeLayout::build(&registry, &mut interner, &Type::struct_("account")).unwrap();
//! // An `int` access inside `number` is fine...
//! assert!(table.lookup(&interner, &Type::int(), 4).is_some());
//! // ...and the bounds for the `number` array stop before `balance`, so an
//! // overflow from `number` into `balance` is flagged.  Hot paths intern
//! // the static type once and probe by dense id.
//! let int_id = interner.intern(&Type::int());
//! let m = table.lookup_id(&interner, int_id, 0).unwrap();
//! assert_eq!(m.bounds.hi, 32);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod intern;
pub mod layout;
pub mod layout_table;
pub mod registry;
pub mod types;

pub use intern::{TypeId, TypeInterner, TypeTraits};
pub use layout::{layout_at, layout_at_with, type_bounds, LayoutOptions, SubObject};
pub use layout_table::{LayoutMatch, LayoutTable, MatchKind, RelBounds, TypeLayout};
pub use registry::{
    BaseDef, FieldDef, MemberLayout, MemberOrigin, RecordDef, RecordLayout, TypeError, TypeRegistry,
};
pub use types::{FunctionType, Primitive, RecordKind, Type};
