//! The layout hash table (paper §5, Example 6).
//!
//! The runtime's `type_check` must answer, in O(1), queries of the form
//! "does the object with allocation (dynamic) type `T[]` contain a
//! sub-object of static type `S[]` at byte offset `k`, and if so what are
//! that sub-object's bounds relative to `k`?".  The paper pre-computes a
//! hash table with one entry per `(T, S, k)` triple:
//!
//! ```text
//!   T × S × k  ↦  −δ .. sizeof(S)−δ
//! ```
//!
//! kept finite by normalising offsets to `k mod sizeof(T)` (the allocation's
//! effective type is `T[N]` with `N` determined only at runtime by the
//! allocation size) and, for structures with flexible array members, by the
//! FAM-specific normalisation of §5.
//!
//! This module implements that table per allocation element type
//! ([`TypeLayout`]) plus a cache keyed by allocation type ([`LayoutTable`]),
//! including:
//!
//! * the tie-breaking rules (wider bounds preferred, one-past-the-end
//!   matches last);
//! * the `char[]` and `void *` coercions ("sloppy"/"de facto" C, §5–6);
//! * unbounded entries for the containing allocation array itself
//!   (Example 6: `(T, T, 0) ↦ −∞..∞`), later narrowed to the allocation
//!   bounds by the runtime.
//!
//! To keep the probe genuinely O(1), the table is keyed by interned
//! [`TypeId`]s rather than structural [`Type`] values: a lookup hashes a
//! `(u32, u64)` pair instead of deep-hashing (and cloning) a type, and the
//! coercion probes use the fixed ids [`TypeId::CHAR`] / [`TypeId::VOID_PTR`]
//! with no hashing of the coerced type at all.  A structural reference
//! implementation (the pre-interning code path) is kept under `#[cfg(test)]`
//! and property-tested equal to the interned path.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::intern::{TypeId, TypeInterner, TypeTraits};
use crate::layout::{layout_at, SubObject};
use crate::registry::{TypeError, TypeRegistry};
use crate::types::Type;

/// Sub-object bounds relative to the queried pointer, in bytes.
///
/// `lo` is usually negative or zero (distance back to the sub-object base),
/// `hi` positive (distance to one past the sub-object end).  The sentinels
/// [`RelBounds::UNBOUNDED`] represent the `−∞..∞` entries of Example 6,
/// which the runtime narrows to the allocation bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelBounds {
    /// Lower bound relative to the queried pointer (inclusive).
    pub lo: i64,
    /// Upper bound relative to the queried pointer (exclusive).
    pub hi: i64,
}

impl RelBounds {
    /// The unbounded range `−∞..∞`.
    pub const UNBOUNDED: RelBounds = RelBounds {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A bounded range.
    pub fn new(lo: i64, hi: i64) -> Self {
        RelBounds { lo, hi }
    }

    /// Width of the range (saturating; unbounded ranges report `u64::MAX`).
    pub fn width(&self) -> u64 {
        if self.is_unbounded() {
            u64::MAX
        } else {
            (self.hi - self.lo).max(0) as u64
        }
    }

    /// Is this the unbounded range?
    pub fn is_unbounded(&self) -> bool {
        self.lo == i64::MIN || self.hi == i64::MAX
    }

    /// Intersection of two relative ranges (the `bounds_narrow` operation).
    pub fn intersect(&self, other: &RelBounds) -> RelBounds {
        RelBounds {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }
}

/// How a successful layout-table lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// The static type matched a sub-object exactly.
    Exact,
    /// The static type matched the containing allocation array itself
    /// (unbounded entry, narrowed to the allocation by the runtime).
    ContainingArray,
    /// Matched through the `void * ⇄ T *` coercion.
    VoidPointerCoercion,
    /// Matched a `char` sub-object through the `char[] → T[]` coercion
    /// (the paper's second hash-table lookup).
    CharCoercion,
    /// The static type is a character type and no exact match existed; the
    /// access is treated as byte access to the containing object
    /// (`T → char[]` direction; "resets the bounds to the containing
    /// object", §6.1).
    ByteAccess,
    /// The allocation is `FREE` (deallocated memory); every lookup fails
    /// with a use-after-free style type error, so this kind only appears in
    /// diagnostics.
    Free,
}

/// A successful lookup: relative sub-object bounds plus how they were found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutMatch {
    /// Sub-object bounds relative to the queried pointer.
    pub bounds: RelBounds,
    /// How the match was obtained.
    pub kind: MatchKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Candidate {
    bounds: RelBounds,
    /// One-past-the-end match (matched last by tie-breaking).
    is_end: bool,
    /// Entry synthesised for the `void*` wildcard rather than an exact
    /// `void*` sub-object.
    pointer_wildcard: bool,
}

impl Candidate {
    /// Tie-breaking rules (§5): non-end entries beat end entries; wider
    /// bounds beat narrower bounds.
    fn better_than(&self, other: &Candidate) -> bool {
        match (self.is_end, other.is_end) {
            (false, true) => true,
            (true, false) => false,
            _ => self.bounds.width() > other.bounds.width(),
        }
    }
}

/// The structurally keyed layout entries shared by the interned table and
/// the `#[cfg(test)]` structural reference implementation.
struct RawLayout {
    element: Type,
    size: u64,
    fam_element_size: Option<u64>,
    entries: HashMap<(Type, u64), Candidate>,
}

impl RawLayout {
    /// Build the structural entry map for allocation element type
    /// `element` (the pre-interning build path, unchanged).
    fn build(registry: &TypeRegistry, element: &Type) -> Result<Self, TypeError> {
        let element = element.strip_array().clone();
        if element.is_free() {
            return Ok(RawLayout {
                element,
                size: 1,
                fam_element_size: None,
                entries: HashMap::new(),
            });
        }
        let size = registry.size_of(&element)?;
        let fam_element = match &element {
            Type::Record(_, tag) => registry.layout(tag)?.flexible_element.clone(),
            _ => None,
        };
        let fam_element_size = match &fam_element {
            Some(e) => Some(registry.size_of(e)?),
            None => None,
        };

        let mut entries: HashMap<(Type, u64), Candidate> = HashMap::new();

        let mut offsets = BTreeSet::new();
        collect_interesting_offsets(registry, &element, 0, &mut offsets)?;
        offsets.insert(0);
        offsets.insert(size);

        for &k in &offsets {
            if k > size {
                continue;
            }
            let subobjects = layout_at(registry, &element, k)?;
            for so in &subobjects {
                insert_candidates(registry, &mut entries, k, so)?;
            }
        }

        // FAM region: offsets past sizeof(T) normalise into
        // [sizeof(T), sizeof(T) + sizeof(U)); their layout is that of a FAM
        // element, and the FAM array itself is unbounded above (limited only
        // by the allocation size).
        if let (Some(fam_elem), Some(fam_size)) = (&fam_element, fam_element_size) {
            let mut fam_offsets = BTreeSet::new();
            collect_interesting_offsets(registry, fam_elem, 0, &mut fam_offsets)?;
            fam_offsets.insert(0);
            fam_offsets.insert(fam_size);
            for &inner in &fam_offsets {
                if inner > fam_size {
                    continue;
                }
                let k = size + inner;
                let subobjects = layout_at(registry, fam_elem, inner)?;
                for so in &subobjects {
                    insert_candidates(registry, &mut entries, k, so)?;
                }
                // The FAM array itself: matched by the element static type
                // with unbounded upper bounds.
                let key = (fam_elem.strip_array().clone(), k);
                offer(
                    &mut entries,
                    key,
                    Candidate {
                        bounds: RelBounds::UNBOUNDED,
                        is_end: false,
                        pointer_wildcard: false,
                    },
                );
            }
        }

        // The containing allocation array: `(T, T, 0) ↦ −∞..∞` (Example 6).
        let self_key = (element.strip_array().clone(), 0);
        offer(
            &mut entries,
            self_key,
            Candidate {
                bounds: RelBounds::UNBOUNDED,
                is_end: false,
                pointer_wildcard: false,
            },
        );

        Ok(RawLayout {
            element,
            size,
            fam_element_size,
            entries,
        })
    }

    #[cfg(test)]
    fn normalize_offset(&self, k: u64) -> u64 {
        normalize_offset(self.size, self.fam_element_size, k)
    }
}

/// The §5 offset normalisation shared by the interned table and the
/// structural reference implementation.
fn normalize_offset(size: u64, fam_element_size: Option<u64>, k: u64) -> u64 {
    if size == 0 {
        return 0;
    }
    if k < size {
        return k;
    }
    match fam_element_size {
        Some(u) if u > 0 => ((k - size) % u) + size,
        // `k == sizeof(T)` is an element boundary of the effective `T[N]`
        // allocation type: it designates the start of the next element
        // exactly like offset 0 does (and the end-of-object case is
        // recovered by the runtime's narrowing to allocation bounds).
        _ => k % size,
    }
}

/// The pre-computed layout table for one allocation element type `T`,
/// keyed by interned [`TypeId`]s.
#[derive(Clone, Debug)]
pub struct TypeLayout {
    /// The allocation element type this table describes.
    pub element: Type,
    /// `sizeof(T)`; offsets are normalised modulo this.
    pub size: u64,
    /// Flexible-array-member element size, if `T` has a FAM.
    pub fam_element_size: Option<u64>,
    /// `(interned static key type, normalised offset) → best candidate`.
    entries: HashMap<(TypeId, u64), Candidate>,
    /// Number of distinct `(S, k)` entries (for statistics / Example 6
    /// style dumps).
    entry_count: usize,
}

impl TypeLayout {
    /// Build the layout table for allocation element type `element`,
    /// interning every static key type into `interner`.
    pub fn build(
        registry: &TypeRegistry,
        interner: &mut TypeInterner,
        element: &Type,
    ) -> Result<Self, TypeError> {
        let raw = RawLayout::build(registry, element)?;
        // Intern key types in a deterministic order: `raw.entries` is a
        // HashMap whose iteration order varies per instance and per
        // process, and interning order assigns `TypeId`s — which are
        // observable (META header words in simulated memory, check-cache
        // slot indices, and hence wire-carried cache statistics).
        let mut raw_entries: Vec<((Type, u64), Candidate)> = raw.entries.into_iter().collect();
        raw_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut entries = HashMap::with_capacity(raw_entries.len());
        for ((ty, k), cand) in raw_entries {
            entries.insert((interner.intern(&ty), k), cand);
        }
        let entry_count = entries.len();
        Ok(TypeLayout {
            element: raw.element,
            size: raw.size,
            fam_element_size: raw.fam_element_size,
            entries,
            entry_count,
        })
    }

    /// Number of `(S, k)` entries in the table.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Normalise an offset into the range covered by the table:
    /// `k mod sizeof(T)` ordinarily, or the FAM normalisation
    /// `((k − sizeof(T)) mod sizeof(U)) + sizeof(T)` for offsets past the
    /// end of a FAM structure (§5).  Idempotent, so callers may normalise
    /// once (e.g. for a cache key) and pass the result to
    /// [`lookup_id`](Self::lookup_id).
    pub fn normalize_offset(&self, k: u64) -> u64 {
        normalize_offset(self.size, self.fam_element_size, k)
    }

    /// Look up the static type `static_ty` at (unnormalised) offset `k`.
    ///
    /// Returns `None` when no sub-object of a compatible type exists at the
    /// offset — a type error.  The static type is canonicalised with
    /// [`Type::strip_array`], matching the paper's convention that static
    /// types are incomplete arrays.  This entry point resolves the type's
    /// id through the interner (one structural hash, no clone); hot paths
    /// that already hold a [`TypeId`] should call
    /// [`lookup_id`](Self::lookup_id) instead.
    pub fn lookup(&self, interner: &TypeInterner, static_ty: &Type, k: u64) -> Option<LayoutMatch> {
        let key_ty = static_ty.strip_array();
        self.lookup_inner(interner.get(key_ty), TypeTraits::of(key_ty), k)
    }

    /// Look up an already interned static type id at (unnormalised or
    /// pre-normalised) offset `k` — the O(1) hot path: no structural
    /// hashing, no cloning.
    pub fn lookup_id(
        &self,
        interner: &TypeInterner,
        static_id: TypeId,
        k: u64,
    ) -> Option<LayoutMatch> {
        self.lookup_inner(Some(static_id), interner.traits(static_id), k)
    }

    fn lookup_inner(
        &self,
        static_id: Option<TypeId>,
        traits: TypeTraits,
        k: u64,
    ) -> Option<LayoutMatch> {
        if self.element.is_free() {
            return None;
        }
        let k = self.normalize_offset(k);

        // 1. Exact lookup (only possible when the static type has ever been
        //    interned; a never-interned type cannot key an entry).
        if let Some(id) = static_id {
            if let Some(c) = self.entries.get(&(id, k)) {
                let kind = if c.bounds.is_unbounded() {
                    MatchKind::ContainingArray
                } else {
                    MatchKind::Exact
                };
                return Some(LayoutMatch {
                    bounds: c.bounds,
                    kind,
                });
            }
        }

        // 2. `void * ⇄ S *` coercion: a static pointer type matches an
        //    exact `void *` sub-object, and a static `void *` matches any
        //    pointer sub-object (the latter is handled by wildcard entries
        //    inserted at build time; the guard below keeps `T*` from
        //    matching `U*` transitively).
        if traits.is_pointer() && !traits.is_void_pointer() {
            if let Some(c) = self.entries.get(&(TypeId::VOID_PTR, k)) {
                if !c.pointer_wildcard {
                    return Some(LayoutMatch {
                        bounds: c.bounds,
                        kind: MatchKind::VoidPointerCoercion,
                    });
                }
            }
        }

        // 3. `char[] → S[]` coercion: the paper's second hash-table lookup
        //    `(T, char, k)`.
        if !traits.is_character() {
            if let Some(c) = self.entries.get(&(TypeId::CHAR, k)) {
                return Some(LayoutMatch {
                    bounds: c.bounds,
                    kind: MatchKind::CharCoercion,
                });
            }
        }

        // 4. `S → char[]` direction: character-typed access to any object is
        //    byte access bounded by the containing allocation.
        if traits.is_character() || traits.is_void() {
            return Some(LayoutMatch {
                bounds: RelBounds::UNBOUNDED,
                kind: MatchKind::ByteAccess,
            });
        }

        None
    }

    /// Dump the table entries, sorted, in the `(T, S, k) ↦ lo..hi` style of
    /// Example 6.  Intended for debugging and documentation tests.
    pub fn dump(&self, interner: &TypeInterner) -> Vec<String> {
        let mut rows: Vec<String> = self
            .entries
            .iter()
            .map(|((s, k), c)| {
                let bounds = if c.bounds.is_unbounded() {
                    "-inf..inf".to_string()
                } else {
                    format!("{}..{}", c.bounds.lo, c.bounds.hi)
                };
                let sname = interner
                    .resolve(*s)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| s.to_string());
                format!("({}, {}, {}) -> {}", self.element, sname, k, bounds)
            })
            .collect();
        rows.sort();
        rows
    }
}

fn offer(entries: &mut HashMap<(Type, u64), Candidate>, key: (Type, u64), cand: Candidate) {
    match entries.get_mut(&key) {
        Some(existing) => {
            if cand.better_than(existing) {
                *existing = cand;
            }
        }
        None => {
            entries.insert(key, cand);
        }
    }
}

fn insert_candidates(
    registry: &TypeRegistry,
    entries: &mut HashMap<(Type, u64), Candidate>,
    k: u64,
    so: &SubObject,
) -> Result<(), TypeError> {
    let (lo, hi) = so.relative_bounds(registry)?;
    let is_end = so.is_end_pointer(registry);
    let key_ty = so.ty.strip_array().clone();
    let cand = Candidate {
        bounds: RelBounds::new(lo, hi),
        is_end,
        pointer_wildcard: false,
    };
    offer(entries, (key_ty.clone(), k), cand);

    // Pointer sub-objects are additionally visible through the `void *`
    // wildcard key so that a static `void *` access matches them.
    if key_ty.is_pointer() && !key_ty.is_void_pointer() {
        offer(
            entries,
            (Type::void_ptr(), k),
            Candidate {
                pointer_wildcard: true,
                ..cand
            },
        );
    }
    Ok(())
}

/// Collect every offset at which some sub-object starts or ends.  These are
/// the only offsets with a non-empty layout, so they are the only offsets
/// that need table entries.
fn collect_interesting_offsets(
    registry: &TypeRegistry,
    ty: &Type,
    base: u64,
    out: &mut BTreeSet<u64>,
) -> Result<(), TypeError> {
    let size = registry.size_of(ty)?;
    out.insert(base);
    out.insert(base + size);
    match ty {
        Type::Array(elem, n) => {
            let esize = registry.size_of(elem)?;
            if esize == 0 {
                return Ok(());
            }
            // One element's interior offsets, replicated across elements.
            let mut inner = BTreeSet::new();
            collect_interesting_offsets(registry, elem, 0, &mut inner)?;
            for i in 0..*n {
                for &o in &inner {
                    out.insert(base + i * esize + o);
                }
            }
        }
        Type::Record(_, tag) => {
            let layout = registry.layout(tag)?.clone();
            for member in &layout.members {
                collect_interesting_offsets(registry, &member.ty, base + member.offset, out)?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// A cache of [`TypeLayout`] tables keyed by interned allocation element
/// type id.
///
/// The paper generates type meta data per compiled module and deduplicates
/// via weak symbols; here the cache plays the same role for library users
/// building layouts outside a runtime.  (`TypeCheckRuntime` itself embeds
/// a denser `TypeId`-indexed vector on its hot path rather than this map.)
/// The cache is not synchronised; the table itself is immutable once
/// built, matching "the type meta data is constant".
#[derive(Debug, Default)]
pub struct LayoutTable {
    cache: HashMap<TypeId, Arc<TypeLayout>>,
}

impl LayoutTable {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached allocation types.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Total number of `(S, k)` entries across all cached types.
    pub fn total_entries(&self) -> usize {
        self.cache.values().map(|t| t.entry_count()).sum()
    }

    /// Get (building and caching if necessary) the layout for the given
    /// allocation element type, interning it first.
    pub fn layout_for(
        &mut self,
        registry: &TypeRegistry,
        interner: &mut TypeInterner,
        element: &Type,
    ) -> Result<Arc<TypeLayout>, TypeError> {
        let id = interner.intern(element);
        self.layout_for_id(registry, interner, id)
    }

    /// Get (building and caching if necessary) the layout for an already
    /// interned allocation element type id.
    pub fn layout_for_id(
        &mut self,
        registry: &TypeRegistry,
        interner: &mut TypeInterner,
        id: TypeId,
    ) -> Result<Arc<TypeLayout>, TypeError> {
        if let Some(t) = self.cache.get(&id) {
            return Ok(t.clone());
        }
        let element = interner
            .resolve(id)
            .cloned()
            .ok_or(TypeError::UnresolvedTypeId(id.raw()))?;
        let built = Arc::new(TypeLayout::build(registry, interner, &element)?);
        self.cache.insert(id, built.clone());
        Ok(built)
    }
}

/// The structural reference implementation of the layout table: entries
/// keyed by `(Type, u64)` with deep structural hashing and per-lookup key
/// cloning — the exact pre-interning code path, kept as the oracle for the
/// interned-lookup property tests.
#[cfg(test)]
pub(crate) struct StructuralTypeLayout {
    raw: RawLayout,
}

#[cfg(test)]
impl StructuralTypeLayout {
    pub(crate) fn build(registry: &TypeRegistry, element: &Type) -> Result<Self, TypeError> {
        Ok(StructuralTypeLayout {
            raw: RawLayout::build(registry, element)?,
        })
    }

    /// The original structural lookup, verbatim.
    pub(crate) fn lookup(&self, static_ty: &Type, k: u64) -> Option<LayoutMatch> {
        if self.raw.element.is_free() {
            return None;
        }
        let k = self.raw.normalize_offset(k);
        let key_ty = static_ty.strip_array().clone();

        if let Some(c) = self.raw.entries.get(&(key_ty.clone(), k)) {
            let kind = if c.bounds.is_unbounded() {
                MatchKind::ContainingArray
            } else {
                MatchKind::Exact
            };
            return Some(LayoutMatch {
                bounds: c.bounds,
                kind,
            });
        }

        if key_ty.is_pointer() && !key_ty.is_void_pointer() {
            if let Some(c) = self.raw.entries.get(&(Type::void_ptr(), k)) {
                if !c.pointer_wildcard {
                    return Some(LayoutMatch {
                        bounds: c.bounds,
                        kind: MatchKind::VoidPointerCoercion,
                    });
                }
            }
        }

        if !key_ty.is_character() {
            if let Some(c) = self.raw.entries.get(&(Type::char_(), k)) {
                return Some(LayoutMatch {
                    bounds: c.bounds,
                    kind: MatchKind::CharCoercion,
                });
            }
        }

        if key_ty.is_character() || key_ty.is_void() {
            return Some(LayoutMatch {
                bounds: RelBounds::UNBOUNDED,
                kind: MatchKind::ByteAccess,
            });
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{FieldDef, RecordDef};

    fn paper_registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::char_ptr()),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S")),
            ],
        ))
        .unwrap();
        reg
    }

    fn build(reg: &TypeRegistry, ty: &Type) -> (TypeInterner, TypeLayout) {
        let mut interner = TypeInterner::new();
        let table = TypeLayout::build(reg, &mut interner, ty).unwrap();
        (interner, table)
    }

    #[test]
    fn example6_entries_exist() {
        let reg = paper_registry();
        let (interner, table) = build(&reg, &Type::struct_("T"));
        // (T, T, 0) ↦ −∞..∞
        let m = table.lookup(&interner, &Type::struct_("T"), 0).unwrap();
        assert!(m.bounds.is_unbounded());
        assert_eq!(m.kind, MatchKind::ContainingArray);
        // (T, float, 0) ↦ 0..4
        let m = table.lookup(&interner, &Type::float(), 0).unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 4));
        assert_eq!(m.kind, MatchKind::Exact);
        // (T, S, off(t)) ↦ 0..24 (paper: 0..20 with its illustrative layout)
        let toff = reg.offset_of("T", "t").unwrap();
        let m = table.lookup(&interner, &Type::struct_("S"), toff).unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 24));
        // (T, int, off(t)) prefers the int[3] sub-object: 0..12.
        let m = table.lookup(&interner, &Type::int(), toff).unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 12));
        // (T, int, off(t)+8) ↦ −8..4 (the a[2] position).
        let m = table.lookup(&interner, &Type::int(), toff + 8).unwrap();
        assert_eq!(m.bounds, RelBounds::new(-8, 4));
        // (T, char*, off(t)+16) ↦ 0..8.
        let m = table
            .lookup(&interner, &Type::char_ptr(), toff + 16)
            .unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 8));
    }

    #[test]
    fn example5_type_check_lookups() {
        // Example 5: q = p + offsetof(t)+8; type_check(q, int[]) matches the
        // int[3] sub-object; type_check(q, double[]) fails.
        let reg = paper_registry();
        let (interner, table) = build(&reg, &Type::struct_("T"));
        let q = reg.offset_of("T", "t").unwrap() + 8;
        assert!(table
            .lookup(&interner, &Type::incomplete_array(Type::int()), q)
            .is_some());
        assert!(table.lookup(&interner, &Type::double(), q).is_none());
    }

    #[test]
    fn lookup_by_id_matches_lookup_by_type() {
        let reg = paper_registry();
        let mut interner = TypeInterner::new();
        let table = TypeLayout::build(&reg, &mut interner, &Type::struct_("T")).unwrap();
        let int_id = interner.intern(&Type::int());
        for k in 0..=40u64 {
            assert_eq!(
                table.lookup_id(&interner, int_id, k),
                table.lookup(&interner, &Type::int(), k),
                "offset {k}"
            );
        }
    }

    #[test]
    fn offsets_are_normalised_modulo_element_size() {
        let reg = paper_registry();
        let (interner, table) = build(&reg, &Type::struct_("T"));
        let size = reg.size_of(&Type::struct_("T")).unwrap();
        let toff = reg.offset_of("T", "t").unwrap();
        // Element 3 of a T[] allocation, field t: same result as element 0.
        let m1 = table.lookup(&interner, &Type::struct_("S"), toff).unwrap();
        let m2 = table
            .lookup(&interner, &Type::struct_("S"), 3 * size + toff)
            .unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn tie_breaking_prefers_wider_non_end_subobjects() {
        // union { float a[10]; float b[20]; } — a float[] check always
        // returns b's bounds (§6, "Limitations").
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::union_(
            "U",
            vec![
                FieldDef::new("a", Type::array(Type::float(), 10)),
                FieldDef::new("b", Type::array(Type::float(), 20)),
            ],
        ))
        .unwrap();
        let (interner, table) = build(&reg, &Type::union_("U"));
        let m = table.lookup(&interner, &Type::float(), 0).unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 80));
    }

    #[test]
    fn end_pointer_candidates_lose_to_start_candidates() {
        // At an int[] element boundary both "end of element i-1" and
        // "start of element i" match `int`; the array-wide bounds win, and
        // among the element candidates the non-end one is preferred.
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Two",
            vec![
                FieldDef::new("x", Type::int()),
                FieldDef::new("y", Type::int()),
            ],
        ))
        .unwrap();
        let (interner, table) = build(&reg, &Type::struct_("Two"));
        // Offset 4: end of x, start of y.  Non-end candidate (y: 0..4) wins
        // over end candidate (x: -4..0).
        let m = table.lookup(&interner, &Type::int(), 4).unwrap();
        assert_eq!(m.bounds, RelBounds::new(0, 4));
    }

    #[test]
    fn scalar_allocation_acts_as_unbounded_array() {
        // malloc'd int arrays: type_check(p, int[]) must succeed for any
        // element offset, with bounds narrowed to the allocation later.
        let reg = TypeRegistry::new();
        let (interner, table) = build(&reg, &Type::int());
        for k in [0u64, 4, 400, 4000] {
            let m = table.lookup(&interner, &Type::int(), k).unwrap();
            assert!(m.bounds.is_unbounded());
        }
        // Misaligned access or wrong type is still an error.
        assert!(table.lookup(&interner, &Type::int(), 2).is_none());
        assert!(table.lookup(&interner, &Type::float(), 0).is_none());
    }

    #[test]
    fn char_coercions_work_both_ways() {
        let reg = paper_registry();
        // Static char access to a struct T object: byte access, unbounded
        // (narrowed to allocation by the runtime).
        let (interner, table) = build(&reg, &Type::struct_("T"));
        let m = table.lookup(&interner, &Type::char_(), 5).unwrap();
        assert_eq!(m.kind, MatchKind::ByteAccess);

        // Static float access to a char buffer allocation: matched via the
        // char coercion (second lookup).  `float` was never interned — the
        // coercion must still fire.
        let (interner, table) = build(&reg, &Type::char_());
        let m = table.lookup(&interner, &Type::float(), 0).unwrap();
        assert_eq!(m.kind, MatchKind::CharCoercion);
    }

    #[test]
    fn void_pointer_coercion_is_not_transitive() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Holder",
            vec![
                FieldDef::new("vp", Type::void_ptr()),
                FieldDef::new("ip", Type::ptr(Type::int())),
            ],
        ))
        .unwrap();
        let (interner, table) = build(&reg, &Type::struct_("Holder"));
        // A static `float *` matches the exact `void *` member...
        let m = table
            .lookup(&interner, &Type::ptr(Type::float()), 0)
            .unwrap();
        assert_eq!(m.kind, MatchKind::VoidPointerCoercion);
        // ...a static `void *` matches the `int *` member...
        let m = table.lookup(&interner, &Type::void_ptr(), 8).unwrap();
        assert_eq!(m.kind, MatchKind::Exact);
        // ...but a static `float *` does NOT match the `int *` member
        // (no transitive coercion through void*).
        assert!(table
            .lookup(&interner, &Type::ptr(Type::float()), 8)
            .is_none());
        // And `T*` vs `T**` confusion (perlbench, §6.1) is still an error.
        assert!(table
            .lookup(&interner, &Type::ptr(Type::ptr(Type::int())), 8)
            .is_none());
    }

    #[test]
    fn fam_offsets_normalise_into_first_element_shape() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Packet",
            vec![
                FieldDef::new("len", Type::int()),
                FieldDef::new("data", Type::incomplete_array(Type::int())),
            ],
        ))
        .unwrap();
        let (interner, table) = build(&reg, &Type::struct_("Packet"));
        assert_eq!(table.fam_element_size, Some(4));
        // sizeof(Packet) == 8 (len + data[1]).  Offset 16 is data[3]; it
        // normalises to 8 + ((16-8) mod 4) = 8 and matches int.
        let m = table.lookup(&interner, &Type::int(), 16).unwrap();
        assert!(m.bounds.is_unbounded() || m.bounds.width() >= 4);
        // Non-FAM types keep plain modulo normalisation.
        let (_, plain) = build(&reg, &Type::int());
        assert_eq!(plain.normalize_offset(13), 13 % 4);
    }

    #[test]
    fn free_allocation_type_never_matches() {
        let reg = TypeRegistry::new();
        let (interner, table) = build(&reg, &Type::Free);
        assert!(table.lookup(&interner, &Type::int(), 0).is_none());
        assert!(table.lookup(&interner, &Type::char_(), 0).is_none());
        assert!(table.lookup(&interner, &Type::Free, 0).is_none());
    }

    #[test]
    fn cache_reuses_built_tables() {
        let reg = paper_registry();
        let mut interner = TypeInterner::new();
        let mut cache = LayoutTable::new();
        let a = cache
            .layout_for(&reg, &mut interner, &Type::struct_("T"))
            .unwrap();
        let b = cache
            .layout_for(&reg, &mut interner, &Type::struct_("T"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Arrays of T share the same element table.
        let c = cache
            .layout_for(&reg, &mut interner, &Type::array(Type::struct_("T"), 100))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert!(cache.total_entries() > 0);
        // The id-keyed entry point resolves to the same table.
        let id = interner.get(&Type::struct_("T")).unwrap();
        let d = cache.layout_for_id(&reg, &mut interner, id).unwrap();
        assert!(Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn interning_order_is_deterministic_across_builds() {
        // Building the same layout table into two fresh interners must
        // assign identical ids: `TypeId`s are observable (META header
        // words, check-cache keys), so the build must not leak HashMap
        // iteration order (which varies per map instance and per process).
        let reg = paper_registry();
        for ty in [
            Type::struct_("T"),
            Type::struct_("S"),
            Type::array(Type::struct_("T"), 4),
        ] {
            let (a, _) = build(&reg, &ty);
            for _ in 0..8 {
                let (b, _) = build(&reg, &ty);
                assert_eq!(a.len(), b.len());
                for raw in 0..a.len() as u32 {
                    let id = TypeId::from_raw(raw);
                    assert_eq!(a.resolve(id), b.resolve(id), "id {id} for {ty}");
                }
            }
        }
    }

    #[test]
    fn dump_is_sorted_and_human_readable() {
        let reg = paper_registry();
        let (interner, table) = build(&reg, &Type::struct_("T"));
        let dump = table.dump(&interner);
        assert!(!dump.is_empty());
        assert!(dump.iter().any(|row| row.contains("-inf..inf")));
        assert!(dump.iter().any(|row| row.contains("struct S")));
        let mut sorted = dump.clone();
        sorted.sort();
        assert_eq!(dump, sorted);
    }

    #[test]
    fn relbounds_arithmetic() {
        let a = RelBounds::new(-8, 4);
        let b = RelBounds::new(0, 4);
        assert_eq!(a.intersect(&b), RelBounds::new(0, 4));
        assert_eq!(a.width(), 12);
        assert!(RelBounds::UNBOUNDED.is_unbounded());
        assert_eq!(RelBounds::UNBOUNDED.intersect(&b), b);
    }

    mod interned_equals_structural {
        //! The satellite property suite: for arbitrary registry types,
        //! static types and offsets, the interned `(TypeId, u64)` lookup
        //! returns exactly the same [`LayoutMatch`] as the structural
        //! reference path.

        use super::*;
        use proptest::prelude::*;

        fn registry() -> TypeRegistry {
            let mut reg = paper_registry();
            reg.define(RecordDef::union_(
                "U",
                vec![
                    FieldDef::new("f", Type::array(Type::float(), 4)),
                    FieldDef::new("p", Type::ptr(Type::int())),
                ],
            ))
            .unwrap();
            reg.define(RecordDef::struct_(
                "Packet",
                vec![
                    FieldDef::new("len", Type::int()),
                    FieldDef::new("tail", Type::incomplete_array(Type::short())),
                ],
            ))
            .unwrap();
            reg
        }

        /// Every allocation / static type shape the suites exercise:
        /// primitives, pointers (incl. `void*`/`char*`), records, unions,
        /// FAM structs, arrays, incomplete arrays, and `FREE`.
        fn type_pool() -> Vec<Type> {
            vec![
                Type::void(),
                Type::char_(),
                Type::short(),
                Type::int(),
                Type::long(),
                Type::float(),
                Type::double(),
                Type::void_ptr(),
                Type::char_ptr(),
                Type::ptr(Type::int()),
                Type::ptr(Type::ptr(Type::int())),
                Type::ptr(Type::struct_("S")),
                Type::struct_("S"),
                Type::struct_("T"),
                Type::union_("U"),
                Type::struct_("Packet"),
                Type::array(Type::int(), 3),
                Type::array(Type::struct_("S"), 2),
                Type::incomplete_array(Type::float()),
                Type::Free,
            ]
        }

        proptest! {
            #[test]
            fn interned_lookup_equals_structural_reference(
                alloc_idx in 0usize..20,
                static_idx in 0usize..20,
                k in 0u64..200,
            ) {
                let reg = registry();
                let pool = type_pool();
                let alloc_ty = &pool[alloc_idx];
                let static_ty = &pool[static_idx];

                let mut interner = TypeInterner::new();
                let structural = StructuralTypeLayout::build(&reg, alloc_ty);
                let table = TypeLayout::build(&reg, &mut interner, alloc_ty);
                let (structural, table) = match (structural, table) {
                    (Ok(s), Ok(t)) => (s, t),
                    // Unlayoutable allocation types (`void`): both paths
                    // must fail with the same error.
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a, b);
                        return Ok(());
                    }
                    (a, b) => {
                        return Err(TestCaseError::new(format!(
                            "build divergence for {}: structural ok={} vs interned ok={}",
                            alloc_ty,
                            a.is_ok(),
                            b.is_ok()
                        )))
                    }
                };

                // The convenience (by-type) entry point...
                prop_assert_eq!(
                    table.lookup(&interner, static_ty, k),
                    structural.lookup(static_ty, k),
                    "lookup({}, {}, {})", alloc_ty, static_ty, k
                );
                // ...and the id-keyed hot path, with the static type
                // interned the way the runtime does it.
                let sid = interner.intern(static_ty);
                prop_assert_eq!(
                    table.lookup_id(&interner, sid, k),
                    structural.lookup(static_ty, k),
                    "lookup_id({}, {}, {})", alloc_ty, static_ty, k
                );
                // Normalisation is idempotent, so pre-normalised cache keys
                // see the same result.
                let k_norm = table.normalize_offset(k);
                prop_assert_eq!(
                    table.lookup_id(&interner, sid, k_norm),
                    structural.lookup(static_ty, k),
                    "lookup_id normalised ({}, {}, {})", alloc_ty, static_ty, k
                );
            }
        }
    }
}
