//! The layout function `L` (paper Figure 2) and sub-object bounds helpers.
//!
//! Given an allocation (dynamic) type `T` and a byte offset `k`, the layout
//! function returns the set of valid sub-objects `⟨U, δ⟩` located at `p + k`
//! for a pointer `p` to the base of the allocation: `U` is the sub-object's
//! type and `δ` the distance (in bytes) from `p + k` back to the sub-object's
//! base.  The rules implemented here are exactly Figure 2 (a)–(h):
//!
//! * (a) `L(T, 0) ∋ ⟨T, 0⟩`
//! * (b) `L(T, sizeof(T)) ∋ ⟨T, sizeof(T)⟩` (one-past-the-end pointers,
//!   C11 §6.5.6 ¶7–8)
//! * (c) `L(T[N], k) ⊇ L(T, k mod sizeof(T))`
//! * (d) `L(T[N], k) ∋ ⟨T[N], k⟩` if `k mod sizeof(T) = 0`
//! * (e)/(f) struct/class members (bases are implicit embedded members)
//! * (g) union members (offset 0)
//! * (h) `L(FREE, k) = {⟨FREE, 0⟩}`
//!
//! Offsets that land at an element boundary of an array are simultaneously
//! the start of element *i* and one-past-the-end of element *i−1*; both
//! sub-objects are reported (this is how the paper derives `⟨int, 4⟩` for
//! `L(T, 12)` in Example 2).

use crate::registry::{TypeError, TypeRegistry};
use crate::types::{RecordKind, Type};

/// A sub-object returned by the layout function: the sub-object's type and
/// the distance `δ` from the queried pointer back to the sub-object's base.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SubObject {
    /// The sub-object's (complete) type.
    pub ty: Type,
    /// Distance in bytes from the queried pointer (`p + k`) to the
    /// sub-object's base; `0` when the pointer is at the base,
    /// `sizeof(ty)` when the pointer is one-past-the-end.
    pub delta: u64,
}

impl SubObject {
    /// Construct a sub-object entry.
    pub fn new(ty: Type, delta: u64) -> Self {
        SubObject { ty, delta }
    }

    /// Whether this entry corresponds to a one-past-the-end pointer
    /// (Fig. 2 rule (b)); such entries are matched *last* by the
    /// tie-breaking rules of §5.
    pub fn is_end_pointer(&self, registry: &TypeRegistry) -> bool {
        match registry.size_of(&self.ty) {
            Ok(sz) => sz > 0 && self.delta == sz,
            Err(_) => false,
        }
    }

    /// The sub-object bounds for a pointer `q` at the queried offset, as the
    /// half-open byte interval `[q − δ, q − δ + sizeof(U))` (the paper's
    /// `type_bounds` helper, §3).  Returned relative to `q`, i.e. as
    /// `(-δ, -δ + sizeof(U))`.
    pub fn relative_bounds(&self, registry: &TypeRegistry) -> Result<(i64, i64), TypeError> {
        let size = registry.size_of(&self.ty)? as i64;
        let delta = self.delta as i64;
        Ok((-delta, -delta + size))
    }
}

/// Options controlling the layout computation.
#[derive(Clone, Copy, Debug)]
pub struct LayoutOptions {
    /// Maximum recursion depth (defence against pathological inputs;
    /// realistic C/C++ types nest far below this).
    pub max_depth: u32,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions { max_depth: 256 }
    }
}

/// Compute `L(ty, offset)`: every valid sub-object at byte offset `offset`
/// from the base of an object of dynamic type `ty`.
///
/// Offsets outside `0 ..= sizeof(ty)` yield an empty set (the caller — the
/// runtime's `type_check` — normalises offsets into range first, because the
/// allocation's *effective* dynamic type is `ty[N]` for `N` determined by the
/// allocation size).
///
/// # Errors
///
/// Returns [`TypeError`] if `ty` (or a member) references an undefined
/// record tag or is incomplete.
pub fn layout_at(
    registry: &TypeRegistry,
    ty: &Type,
    offset: u64,
) -> Result<Vec<SubObject>, TypeError> {
    layout_at_with(registry, ty, offset, LayoutOptions::default())
}

/// [`layout_at`] with explicit [`LayoutOptions`].
pub fn layout_at_with(
    registry: &TypeRegistry,
    ty: &Type,
    offset: u64,
    options: LayoutOptions,
) -> Result<Vec<SubObject>, TypeError> {
    let mut out = Vec::new();
    collect(registry, ty, offset, options.max_depth, &mut out)?;
    dedup(&mut out);
    Ok(out)
}

fn collect(
    registry: &TypeRegistry,
    ty: &Type,
    k: u64,
    depth: u32,
    out: &mut Vec<SubObject>,
) -> Result<(), TypeError> {
    if depth == 0 {
        return Ok(());
    }

    // Rule (h): deallocated memory.
    if ty.is_free() {
        out.push(SubObject::new(Type::Free, 0));
        return Ok(());
    }

    let size = registry.size_of(ty)?;

    // Rules (a) and (b).
    if k == 0 {
        out.push(SubObject::new(ty.clone(), 0));
    }
    if k == size && size > 0 {
        out.push(SubObject::new(ty.clone(), size));
    }
    if k > size {
        return Ok(());
    }

    match ty {
        Type::Array(elem, n) => {
            let esize = registry.size_of(elem)?;
            if esize == 0 || *n == 0 {
                return Ok(());
            }
            // Rule (d): the pointer also designates the containing array
            // itself whenever it sits on an element boundary (and is not
            // past the end, which rules (a)/(b) already cover).
            if k.is_multiple_of(esize) && k > 0 && k < size {
                out.push(SubObject::new(ty.clone(), k));
            }
            // Rule (c): recurse into the element the offset falls in.
            if k < size {
                let rem = k % esize;
                collect(registry, elem, rem, depth - 1, out)?;
                // An offset on an element boundary is simultaneously
                // one-past-the-end of the previous element.
                if rem == 0 && k > 0 {
                    collect(registry, elem, esize, depth - 1, out)?;
                }
            } else {
                // k == size: one-past-the-end of the last element.
                collect(registry, elem, esize, depth - 1, out)?;
            }
        }
        Type::Record(kind, tag) => {
            let layout = registry.layout(tag)?.clone();
            match kind {
                RecordKind::Union => {
                    // Rule (g): every member at offset 0.
                    for member in &layout.members {
                        if k <= member.size {
                            collect(registry, &member.ty, k, depth - 1, out)?;
                        }
                    }
                }
                RecordKind::Struct | RecordKind::Class => {
                    // Rules (e)/(f): members and embedded bases.
                    for member in &layout.members {
                        if k >= member.offset && k <= member.offset + member.size {
                            collect(registry, &member.ty, k - member.offset, depth - 1, out)?;
                        }
                    }
                }
            }
        }
        // Fundamental types, enums, pointers: rules (a)/(b) already applied.
        _ => {}
    }
    Ok(())
}

fn dedup(subobjects: &mut Vec<SubObject>) {
    let mut seen = std::collections::HashSet::new();
    subobjects.retain(|so| seen.insert((so.ty.clone(), so.delta)));
}

/// Compute the absolute sub-object bounds for a pointer value `q` (an
/// address) matching sub-object `so`: the paper's
/// `type_bounds(q, ⟨U, δ⟩) = q − δ .. q − δ + sizeof(U)`.
pub fn type_bounds(
    registry: &TypeRegistry,
    q: u64,
    so: &SubObject,
) -> Result<(u64, u64), TypeError> {
    let size = registry.size_of(&so.ty)?;
    let lo = q.saturating_sub(so.delta);
    Ok((lo, lo + size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{FieldDef, RecordDef};

    fn contains(set: &[SubObject], ty: &Type, delta: u64) -> bool {
        set.iter().any(|so| so.ty == *ty && so.delta == delta)
    }

    /// Registry for the paper's running example (Example 1/2).
    fn paper_registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::char_ptr()),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S")),
            ],
        ))
        .unwrap();
        reg
    }

    #[test]
    fn fundamental_type_layout_matches_paper_int_example() {
        // L(int, 0) = {⟨int, 0⟩}, L(int, 4) = {⟨int, 4⟩}, else ∅.
        let reg = TypeRegistry::new();
        let l0 = layout_at(&reg, &Type::int(), 0).unwrap();
        assert_eq!(l0, vec![SubObject::new(Type::int(), 0)]);
        let l4 = layout_at(&reg, &Type::int(), 4).unwrap();
        assert_eq!(l4, vec![SubObject::new(Type::int(), 4)]);
        assert!(layout_at(&reg, &Type::int(), 2).unwrap().is_empty());
        assert!(layout_at(&reg, &Type::int(), 5).unwrap().is_empty());
    }

    #[test]
    fn paper_example2_offset_of_t_member() {
        // The SysV layout places T::t at offset 8 (the paper's illustration
        // uses offset 4); the *set* of sub-objects at that offset matches
        // Example 2's L(T, 4) modulo the shifted base.
        let reg = paper_registry();
        let t = Type::struct_("T");
        let off = reg.offset_of("T", "t").unwrap();
        let l = layout_at(&reg, &t, off).unwrap();
        assert!(contains(&l, &Type::struct_("S"), 0));
        assert!(contains(&l, &Type::array(Type::int(), 3), 0));
        assert!(contains(&l, &Type::int(), 0));
        // One-past-the-end of T::f (float, delta = sizeof(float)) is only
        // present when f ends exactly where t begins; with the 8-byte
        // alignment of S there is padding, so the float end-pointer appears
        // at offset 4 instead.
        let l4 = layout_at(&reg, &t, 4).unwrap();
        assert!(contains(&l4, &Type::float(), 4));
    }

    #[test]
    fn paper_example2_interior_array_element() {
        // Example 2: L(T, 12) = {⟨int[3], 8⟩, ⟨int, 0⟩, ⟨int, 4⟩}
        // With SysV offsets T::t is at 8, so the analogous offset is
        // 8 (t) + 8 (a[2]) = 16.
        let reg = paper_registry();
        let t = Type::struct_("T");
        let k = reg.offset_of("T", "t").unwrap() + 8;
        let l = layout_at(&reg, &t, k).unwrap();
        assert!(contains(&l, &Type::array(Type::int(), 3), 8));
        assert!(contains(&l, &Type::int(), 0));
        assert!(contains(&l, &Type::int(), 4));
        // And nothing matches double.
        assert!(!l.iter().any(|so| so.ty == Type::double()));
    }

    #[test]
    fn example2_faithful_offsets_with_packed_variant() {
        // A variant of the paper's T whose members all have 4-byte
        // alignment reproduces Example 2's literal offsets (t at 4,
        // t.a at 4, t.s at 16).
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S4",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::int()), // stand-in with align 4
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T4",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S4")),
            ],
        ))
        .unwrap();
        assert_eq!(reg.offset_of("T4", "t").unwrap(), 4);
        let t = Type::struct_("T4");
        let l4 = layout_at(&reg, &t, 4).unwrap();
        // L(T, 4) = {⟨S, 0⟩, ⟨int[3], 0⟩, ⟨int, 0⟩, ⟨float, 4⟩}
        assert!(contains(&l4, &Type::struct_("S4"), 0));
        assert!(contains(&l4, &Type::array(Type::int(), 3), 0));
        assert!(contains(&l4, &Type::int(), 0));
        assert!(contains(&l4, &Type::float(), 4));

        let l12 = layout_at(&reg, &t, 12).unwrap();
        // L(T, 12) = {⟨int[3], 8⟩, ⟨int, 0⟩, ⟨int, 4⟩}
        assert!(contains(&l12, &Type::array(Type::int(), 3), 8));
        assert!(contains(&l12, &Type::int(), 0));
        assert!(contains(&l12, &Type::int(), 4));
        assert!(!contains(&l12, &Type::struct_("S4"), 0));
    }

    #[test]
    fn array_boundary_reports_start_and_end_of_adjacent_elements() {
        let reg = TypeRegistry::new();
        let arr = Type::array(Type::int(), 100);
        let l = layout_at(&reg, &arr, 40).unwrap();
        assert!(contains(&l, &Type::int(), 0)); // start of element 10
        assert!(contains(&l, &Type::int(), 4)); // end of element 9
        assert!(contains(&l, &arr, 40)); // rule (d): the array itself
    }

    #[test]
    fn array_end_is_one_past_the_end() {
        let reg = TypeRegistry::new();
        let arr = Type::array(Type::int(), 4);
        let l = layout_at(&reg, &arr, 16).unwrap();
        assert!(contains(&l, &arr, 16)); // rule (b) for the array
        assert!(contains(&l, &Type::int(), 4)); // end of the last element
                                                // Nothing beyond the end.
        assert!(layout_at(&reg, &arr, 17).unwrap().is_empty());
    }

    #[test]
    fn misaligned_offset_into_array_matches_nothing() {
        let reg = TypeRegistry::new();
        let arr = Type::array(Type::int(), 8);
        assert!(layout_at(&reg, &arr, 2).unwrap().is_empty());
        assert!(layout_at(&reg, &arr, 7).unwrap().is_empty());
    }

    #[test]
    fn offset_into_struct_padding_matches_nothing() {
        // struct Padded { char c; /* 3 bytes padding */ int i; }
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Padded",
            vec![
                FieldDef::new("c", Type::char_()),
                FieldDef::new("i", Type::int()),
            ],
        ))
        .unwrap();
        let t = Type::struct_("Padded");
        let l2 = layout_at(&reg, &t, 2).unwrap();
        // Offset 2 is padding: no sub-object starts or ends there (char ends
        // at 1, int starts at 4).  This is exactly the gcc finding of §6.1
        // (overflow into structure padding).
        assert!(l2.is_empty());
    }

    #[test]
    fn union_members_overlap() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::union_(
            "U",
            vec![
                FieldDef::new("a", Type::array(Type::float(), 10)),
                FieldDef::new("b", Type::array(Type::float(), 20)),
            ],
        ))
        .unwrap();
        let u = Type::union_("U");
        let l = layout_at(&reg, &u, 0).unwrap();
        assert!(contains(&l, &Type::array(Type::float(), 10), 0));
        assert!(contains(&l, &Type::array(Type::float(), 20), 0));
        assert!(contains(&l, &Type::float(), 0));
        // Offset 40 is the end of `a` but still inside `b`.
        let l40 = layout_at(&reg, &u, 40).unwrap();
        assert!(contains(&l40, &Type::array(Type::float(), 10), 40));
        assert!(contains(&l40, &Type::array(Type::float(), 20), 40));
        assert!(contains(&l40, &Type::float(), 0));
    }

    #[test]
    fn free_type_layout_is_free_at_every_offset() {
        let reg = TypeRegistry::new();
        for k in [0u64, 1, 7, 100, 12345] {
            let l = layout_at(&reg, &Type::Free, k).unwrap();
            assert_eq!(l, vec![SubObject::new(Type::Free, 0)]);
        }
    }

    #[test]
    fn class_inheritance_exposes_base_subobject() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::class(
            "Base",
            vec![],
            vec![FieldDef::new("x", Type::int())],
            false,
        ))
        .unwrap();
        reg.define(RecordDef::class(
            "Derived",
            vec![crate::registry::BaseDef::new("Base")],
            vec![FieldDef::new("y", Type::float())],
            false,
        ))
        .unwrap();
        let d = Type::class("Derived");
        let l0 = layout_at(&reg, &d, 0).unwrap();
        assert!(contains(&l0, &Type::class("Derived"), 0));
        assert!(contains(&l0, &Type::class("Base"), 0));
        assert!(contains(&l0, &Type::int(), 0));
        // Derived's own field is NOT at offset 0.
        assert!(!contains(&l0, &Type::float(), 0));
        let l4 = layout_at(&reg, &d, 4).unwrap();
        assert!(contains(&l4, &Type::float(), 0));
    }

    #[test]
    fn relative_bounds_and_type_bounds_agree() {
        let reg = paper_registry();
        let so = SubObject::new(Type::array(Type::int(), 3), 8);
        assert_eq!(so.relative_bounds(&reg).unwrap(), (-8, 4));
        // For a pointer at address 1000: bounds are 992..1004.
        assert_eq!(type_bounds(&reg, 1000, &so).unwrap(), (992, 1004));
    }

    #[test]
    fn end_pointer_detection() {
        let reg = TypeRegistry::new();
        assert!(SubObject::new(Type::int(), 4).is_end_pointer(&reg));
        assert!(!SubObject::new(Type::int(), 0).is_end_pointer(&reg));
        assert!(!SubObject::new(Type::int(), 2).is_end_pointer(&reg));
    }

    #[test]
    fn nested_array_of_structs() {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "Pair",
            vec![
                FieldDef::new("a", Type::int()),
                FieldDef::new("b", Type::int()),
            ],
        ))
        .unwrap();
        let arr = Type::array(Type::struct_("Pair"), 4);
        // Offset 12: element 1, field b.
        let l = layout_at(&reg, &arr, 12).unwrap();
        assert!(contains(&l, &Type::int(), 0)); // Pair::b of element 1
        assert!(contains(&l, &Type::int(), 4)); // end of Pair::a of element 1
        assert!(!contains(&l, &Type::struct_("Pair"), 0));
        // Offset 8: start of element 1.
        let l8 = layout_at(&reg, &arr, 8).unwrap();
        assert!(contains(&l8, &Type::struct_("Pair"), 0));
        assert!(contains(&l8, &arr, 8));
        assert!(contains(&l8, &Type::struct_("Pair"), 8)); // end of element 0
    }

    #[test]
    fn deep_nesting_is_flattened() {
        // The layout is a flattened representation (paper, after Example 2):
        // sub-objects three levels deep are reported directly.
        let reg = paper_registry();
        let t = Type::struct_("T");
        let toff = reg.offset_of("T", "t").unwrap();
        let l = layout_at(&reg, &t, toff + 4).unwrap();
        // p->t.a[1] is three levels deep (T -> S -> int[3] -> int).
        assert!(contains(&l, &Type::int(), 0));
    }
}
