//! The C/C++ dynamic type representation.
//!
//! A [`Type`] models a qualifier-free C/C++ type as defined by the paper
//! (§3): fundamental types, enumerations, pointers, function pointers,
//! arrays (complete and incomplete), structures, classes, unions, and the
//! special `FREE` type bound to deallocated memory.
//!
//! Record types (`struct`/`class`/`union`) are *nominal*: a [`Type::Record`]
//! only carries the tag, and the member layout lives in a
//! [`TypeRegistry`](crate::registry::TypeRegistry).  This mirrors the paper's
//! treatment: "structures, classes and unions are considered equivalent based
//! on tag".

use std::fmt;
use std::sync::Arc;

/// A fundamental (scalar) C/C++ type.
///
/// Sizes follow the LP64 data model used by the paper's x86-64 target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Primitive {
    /// `void` — size 0, only meaningful behind a pointer.
    Void,
    /// `_Bool` / `bool`.
    Bool,
    /// Plain `char` (also used for `signed char` / `unsigned char`; the
    /// distinction does not affect layout and the paper's coercion rules
    /// treat all character types alike).
    Char,
    /// `short` / `unsigned short`.
    Short,
    /// `int` / `unsigned int`.  Enumerations are treated as `int` (§6,
    /// "Limitations").
    Int,
    /// `long` / `unsigned long` (LP64: 8 bytes).
    Long,
    /// `long long` / `unsigned long long`.
    LongLong,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `long double` (x86-64 SysV: 16 bytes).
    LongDouble,
}

impl Primitive {
    /// Size of the primitive in bytes.
    pub fn size(self) -> u64 {
        match self {
            Primitive::Void => 0,
            Primitive::Bool | Primitive::Char => 1,
            Primitive::Short => 2,
            Primitive::Int | Primitive::Float => 4,
            Primitive::Long | Primitive::LongLong | Primitive::Double => 8,
            Primitive::LongDouble => 16,
        }
    }

    /// Alignment of the primitive in bytes.
    pub fn align(self) -> u64 {
        match self {
            Primitive::Void => 1,
            other => other.size().max(1),
        }
    }

    /// Human-readable C spelling.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Void => "void",
            Primitive::Bool => "bool",
            Primitive::Char => "char",
            Primitive::Short => "short",
            Primitive::Int => "int",
            Primitive::Long => "long",
            Primitive::LongLong => "long long",
            Primitive::Float => "float",
            Primitive::Double => "double",
            Primitive::LongDouble => "long double",
        }
    }

    /// True for the character types that participate in the `char[]`
    /// coercion rule (§5, "automatic coercions").
    pub fn is_character(self) -> bool {
        matches!(self, Primitive::Char)
    }

    /// True for integer-like primitives.
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            Primitive::Bool
                | Primitive::Char
                | Primitive::Short
                | Primitive::Int
                | Primitive::Long
                | Primitive::LongLong
        )
    }

    /// True for floating-point primitives.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Primitive::Float | Primitive::Double | Primitive::LongDouble
        )
    }
}

/// The kind of a record (aggregate) type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordKind {
    /// A C `struct` (or C++ `struct`).
    Struct,
    /// A C++ `class`.  Layout-wise identical to `Struct`; retained so error
    /// reports can distinguish C++ class confusion (CaVer-style findings)
    /// from C struct confusion.
    Class,
    /// A C/C++ `union`: every member lives at offset 0 (Fig. 2 rule (g)).
    Union,
}

impl RecordKind {
    /// The C keyword for this record kind.
    pub fn keyword(self) -> &'static str {
        match self {
            RecordKind::Struct => "struct",
            RecordKind::Class => "class",
            RecordKind::Union => "union",
        }
    }
}

/// A function type: return type plus parameter types.
///
/// The paper treats virtual function tables as "arrays of generic functions"
/// (§6, "Limitations"); [`FunctionType::generic`] builds that generic
/// function type.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionType {
    /// Return type.
    pub ret: Type,
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Whether the function is variadic (`...`).
    pub variadic: bool,
}

impl FunctionType {
    /// The "generic function" type used for virtual-table entries.
    pub fn generic() -> Self {
        FunctionType {
            ret: Type::void(),
            params: Vec::new(),
            variadic: true,
        }
    }
}

/// A qualifier-free C/C++ type.
///
/// `Type` is cheap to clone: compound types share their component types via
/// [`Arc`].  Equality is structural for everything except records, which are
/// compared by tag (nominal equivalence), matching the paper.  The `Ord` is
/// an arbitrary but *stable* structural order, used to make hash-map
/// traversals deterministic wherever the visit order is observable (e.g.
/// the interning order of layout-table key types).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A fundamental type.
    Prim(Primitive),
    /// An enumeration; treated as `int` for layout but retains its tag for
    /// diagnostics.
    Enum(Arc<str>),
    /// A pointer type `T *`.  C++ references are treated as pointers (§6).
    Pointer(Arc<Type>),
    /// A function type (only meaningful behind a pointer).
    Function(Arc<FunctionType>),
    /// A complete array type `T[N]`.
    Array(Arc<Type>, u64),
    /// An incomplete array type `T[]`.  Static types used in checks are
    /// incomplete (§4 footnote 3); allocation (dynamic) types are complete.
    IncompleteArray(Arc<Type>),
    /// A named `struct`/`class`/`union` type, referenced by tag.
    Record(RecordKind, Arc<str>),
    /// The special type bound to deallocated memory (§3, Fig. 2(h)).
    Free,
}

impl Type {
    /// `void`.
    pub fn void() -> Type {
        Type::Prim(Primitive::Void)
    }
    /// `bool`.
    pub fn bool_() -> Type {
        Type::Prim(Primitive::Bool)
    }
    /// `char`.
    pub fn char_() -> Type {
        Type::Prim(Primitive::Char)
    }
    /// `short`.
    pub fn short() -> Type {
        Type::Prim(Primitive::Short)
    }
    /// `int`.
    pub fn int() -> Type {
        Type::Prim(Primitive::Int)
    }
    /// `long`.
    pub fn long() -> Type {
        Type::Prim(Primitive::Long)
    }
    /// `long long`.
    pub fn long_long() -> Type {
        Type::Prim(Primitive::LongLong)
    }
    /// `float`.
    pub fn float() -> Type {
        Type::Prim(Primitive::Float)
    }
    /// `double`.
    pub fn double() -> Type {
        Type::Prim(Primitive::Double)
    }
    /// `long double`.
    pub fn long_double() -> Type {
        Type::Prim(Primitive::LongDouble)
    }
    /// An enumeration type with the given tag.
    pub fn enum_(tag: impl Into<Arc<str>>) -> Type {
        Type::Enum(tag.into())
    }
    /// A pointer to `inner`.
    pub fn ptr(inner: Type) -> Type {
        Type::Pointer(Arc::new(inner))
    }
    /// `void *`.
    pub fn void_ptr() -> Type {
        Type::ptr(Type::void())
    }
    /// `char *`.
    pub fn char_ptr() -> Type {
        Type::ptr(Type::char_())
    }
    /// A complete array `elem[n]`.
    pub fn array(elem: Type, n: u64) -> Type {
        Type::Array(Arc::new(elem), n)
    }
    /// An incomplete array `elem[]`.
    pub fn incomplete_array(elem: Type) -> Type {
        Type::IncompleteArray(Arc::new(elem))
    }
    /// A `struct tag` type.
    pub fn struct_(tag: impl Into<Arc<str>>) -> Type {
        Type::Record(RecordKind::Struct, tag.into())
    }
    /// A `class tag` type.
    pub fn class(tag: impl Into<Arc<str>>) -> Type {
        Type::Record(RecordKind::Class, tag.into())
    }
    /// A `union tag` type.
    pub fn union_(tag: impl Into<Arc<str>>) -> Type {
        Type::Record(RecordKind::Union, tag.into())
    }
    /// A function type.
    pub fn function(ret: Type, params: Vec<Type>, variadic: bool) -> Type {
        Type::Function(Arc::new(FunctionType {
            ret,
            params,
            variadic,
        }))
    }
    /// A pointer to the generic function type (virtual-table entry type).
    pub fn generic_fn_ptr() -> Type {
        Type::Pointer(Arc::new(Type::Function(Arc::new(FunctionType::generic()))))
    }

    /// Is this the `void` type?
    pub fn is_void(&self) -> bool {
        matches!(self, Type::Prim(Primitive::Void))
    }

    /// Is this a pointer type?
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_))
    }

    /// Is this `void *`?
    pub fn is_void_pointer(&self) -> bool {
        matches!(self, Type::Pointer(p) if p.is_void())
    }

    /// Is this a character type (participates in `char[]` coercion)?
    pub fn is_character(&self) -> bool {
        matches!(self, Type::Prim(p) if p.is_character())
    }

    /// Is this an array type (complete or incomplete)?
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..) | Type::IncompleteArray(_))
    }

    /// Is this a record (struct/class/union) type?
    pub fn is_record(&self) -> bool {
        matches!(self, Type::Record(..))
    }

    /// Is this the special `FREE` type?
    pub fn is_free(&self) -> bool {
        matches!(self, Type::Free)
    }

    /// Is this an integer type (enums included)?
    pub fn is_integer(&self) -> bool {
        match self {
            Type::Prim(p) => p.is_integer(),
            Type::Enum(_) => true,
            _ => false,
        }
    }

    /// Is this a floating-point type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Prim(p) if p.is_float())
    }

    /// Is this a scalar (integer, float, enum or pointer) type?
    pub fn is_scalar(&self) -> bool {
        self.is_integer() || self.is_float() || self.is_pointer()
    }

    /// The pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Pointer(p) => Some(p),
            _ => None,
        }
    }

    /// The element type if this is a (complete or incomplete) array.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(e, _) | Type::IncompleteArray(e) => Some(e),
            _ => None,
        }
    }

    /// The array length if this is a complete array.
    pub fn array_len(&self) -> Option<u64> {
        match self {
            Type::Array(_, n) => Some(*n),
            _ => None,
        }
    }

    /// The record tag if this is a record type.
    pub fn record_tag(&self) -> Option<&str> {
        match self {
            Type::Record(_, tag) => Some(tag),
            _ => None,
        }
    }

    /// Strip array-ness: `T[N]` and `T[]` become `T`; other types are
    /// returned unchanged.  This is the canonicalisation used for layout
    /// hash-table keys, where static types are always incomplete arrays of
    /// some element type (§4 footnote 3).
    pub fn strip_array(&self) -> &Type {
        match self {
            Type::Array(e, _) | Type::IncompleteArray(e) => e,
            other => other,
        }
    }

    /// The incomplete static type `T[]` corresponding to this type: arrays
    /// lose their length; scalars/records become `self[]` conceptually but
    /// are represented by the element type itself (keys in the layout table
    /// are element types).
    pub fn to_static_key(&self) -> Type {
        self.strip_array().clone()
    }

    /// Decay to the type used when this type appears as an expression
    /// (arrays decay to element pointers, functions to function pointers).
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(e, _) | Type::IncompleteArray(e) => Type::Pointer(e.clone()),
            Type::Function(f) => Type::Pointer(Arc::new(Type::Function(f.clone()))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Prim(p) => write!(f, "{}", p.name()),
            Type::Enum(tag) => write!(f, "enum {tag}"),
            Type::Pointer(inner) => write!(f, "{inner}*"),
            Type::Function(ft) => {
                write!(f, "{}(", ft.ret)?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if ft.variadic {
                    if !ft.params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ")")
            }
            Type::Array(e, n) => write!(f, "{e}[{n}]"),
            Type::IncompleteArray(e) => write!(f, "{e}[]"),
            Type::Record(kind, tag) => write!(f, "{} {tag}", kind.keyword()),
            Type::Free => write!(f, "FREE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes_follow_lp64() {
        assert_eq!(Primitive::Char.size(), 1);
        assert_eq!(Primitive::Short.size(), 2);
        assert_eq!(Primitive::Int.size(), 4);
        assert_eq!(Primitive::Long.size(), 8);
        assert_eq!(Primitive::LongLong.size(), 8);
        assert_eq!(Primitive::Float.size(), 4);
        assert_eq!(Primitive::Double.size(), 8);
        assert_eq!(Primitive::LongDouble.size(), 16);
        assert_eq!(Primitive::Void.size(), 0);
    }

    #[test]
    fn primitive_alignment_equals_size_for_scalars() {
        for p in [
            Primitive::Bool,
            Primitive::Char,
            Primitive::Short,
            Primitive::Int,
            Primitive::Long,
            Primitive::Float,
            Primitive::Double,
        ] {
            assert_eq!(p.align(), p.size());
        }
        assert_eq!(Primitive::Void.align(), 1);
    }

    #[test]
    fn display_formats_compound_types() {
        let t = Type::ptr(Type::array(Type::int(), 3));
        assert_eq!(t.to_string(), "int[3]*");
        assert_eq!(Type::struct_("S").to_string(), "struct S");
        assert_eq!(Type::union_("U").to_string(), "union U");
        assert_eq!(Type::incomplete_array(Type::char_()).to_string(), "char[]");
        assert_eq!(Type::Free.to_string(), "FREE");
        assert_eq!(
            Type::function(Type::int(), vec![Type::char_ptr()], true).to_string(),
            "int(char*, ...)"
        );
    }

    #[test]
    fn record_equality_is_by_tag() {
        assert_eq!(Type::struct_("S"), Type::struct_("S"));
        assert_ne!(Type::struct_("S"), Type::struct_("T"));
        assert_ne!(Type::struct_("S"), Type::union_("S"));
        assert_ne!(Type::struct_("S"), Type::class("S"));
    }

    #[test]
    fn strip_array_removes_one_level() {
        let t = Type::array(Type::int(), 100);
        assert_eq!(*t.strip_array(), Type::int());
        let u = Type::incomplete_array(Type::struct_("S"));
        assert_eq!(*u.strip_array(), Type::struct_("S"));
        assert_eq!(*Type::float().strip_array(), Type::float());
    }

    #[test]
    fn decay_converts_arrays_and_functions_to_pointers() {
        assert_eq!(Type::array(Type::int(), 8).decay(), Type::ptr(Type::int()));
        let f = Type::function(Type::void(), vec![], false);
        assert!(f.decay().is_pointer());
        assert_eq!(Type::int().decay(), Type::int());
    }

    #[test]
    fn predicates_classify_types() {
        assert!(Type::int().is_integer());
        assert!(Type::enum_("E").is_integer());
        assert!(Type::double().is_float());
        assert!(Type::void_ptr().is_void_pointer());
        assert!(Type::char_().is_character());
        assert!(!Type::int().is_character());
        assert!(Type::Free.is_free());
        assert!(Type::array(Type::int(), 4).is_array());
        assert!(Type::ptr(Type::int()).is_scalar());
        assert!(!Type::struct_("S").is_scalar());
    }

    #[test]
    fn pointee_and_element_accessors() {
        assert_eq!(Type::ptr(Type::int()).pointee(), Some(&Type::int()));
        assert_eq!(Type::int().pointee(), None);
        assert_eq!(
            Type::array(Type::char_(), 3).element(),
            Some(&Type::char_())
        );
        assert_eq!(Type::array(Type::char_(), 3).array_len(), Some(3));
        assert_eq!(Type::incomplete_array(Type::char_()).array_len(), None);
        assert_eq!(Type::struct_("S").record_tag(), Some("S"));
    }
}
