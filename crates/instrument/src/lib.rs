//! # instrument
//!
//! Dynamic type-check instrumentation passes for the EffectiveSan
//! reproduction — the paper's Figure 3 schema and its reduced variants,
//! plus the instrumentation shapes of the baseline sanitizers the paper
//! compares against, all expressed as rewrites of the `minic` typed IR.
//!
//! * [`SanitizerKind`] enumerates every tool (EffectiveSan full / -bounds /
//!   -type, AddressSanitizer, LowFat, SoftBound, TypeSan, HexType, CETS,
//!   and the uninstrumented baseline);
//! * [`instrument_program`] rewrites a compiled program for a given tool;
//! * [`PassConfig`] exposes the individual knobs for ablation experiments.
//!
//! ## Example
//!
//! ```
//! use instrument::{instrument_program, SanitizerKind};
//!
//! let program = minic::compile(
//!     "int sum(int *a, int n) {
//!          int s = 0;
//!          for (int i = 0; i < n; i++) { s += a[i]; }
//!          return s;
//!      }",
//! )
//! .unwrap();
//! let instrumented = instrument_program(&program, SanitizerKind::EffectiveFull);
//! assert!(instrumented.check_count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod pass;

pub use config::{InputCheck, ParseSanitizerKindError, PassConfig, SanitizerKind};
pub use pass::{instrument_function, instrument_program, instrument_program_with};
