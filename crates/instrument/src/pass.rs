//! The generic dynamic-check instrumentation pass.
//!
//! This is the paper's Figure 3 schema implemented as an IR→IR rewrite,
//! parameterised by [`PassConfig`] so that the two reduced EffectiveSan
//! variants (§6.2) and the baseline sanitizers share one pass:
//!
//! * **(a)–(d)** input pointers (parameters, call returns, loads of
//!   pointers, casts) get a `type_check` (or `bounds_get`) that yields the
//!   sub-object bounds for the pointer's *static* type;
//! * **(e)** field accesses narrow bounds (`bounds_narrow`);
//! * **(f)** pointer arithmetic propagates bounds unchanged;
//! * **(g)** every dereference and pointer escape is bounds-checked.
//!
//! Only *used* pointers attract instrumentation ("it is the responsibility
//! of the eventual user of the pointer to check the type"), and simple
//! redundant-check elimination mirrors the optimizations the prototype
//! implements (§6).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use effective_types::{Type, TypeInterner, TypeRegistry};
use minic::ir::{Builtin, CastKind, Const, Function, Instr, Program, Slot};

use crate::config::{InputCheck, PassConfig, SanitizerKind};

/// Instrument a whole program for the given sanitizer.
///
/// The input program is left untouched; a rewritten copy is returned.
/// [`SanitizerKind::None`] returns a plain clone (the uninstrumented
/// baseline).
pub fn instrument_program(program: &Program, kind: SanitizerKind) -> Program {
    instrument_program_with(program, kind.config())
}

/// Instrument a whole program with an explicit configuration.
pub fn instrument_program_with(program: &Program, config: PassConfig) -> Program {
    let mut out = program.clone();
    if !config.is_enabled() {
        return out;
    }
    let registry = out.registry.clone();
    // One interner per program: the emitted check instructions carry
    // `TypeId`s resolved here, once, so the ids must be deterministic —
    // visit functions in name order, not `HashMap` order.
    let mut interner = TypeInterner::new();
    let mut names: Vec<String> = out.functions.keys().cloned().collect();
    names.sort_unstable();
    for name in &names {
        let func = out.functions.get_mut(name).expect("function exists");
        instrument_function(
            std::sync::Arc::make_mut(func),
            &registry,
            &config,
            &mut interner,
        );
    }
    out
}

/// Instrument a single function in place.  `interner` assigns the
/// program-wide [`effective_types::TypeId`]s carried by the emitted check
/// instructions.
pub fn instrument_function(
    func: &mut Function,
    registry: &TypeRegistry,
    config: &PassConfig,
    interner: &mut TypeInterner,
) {
    let used = used_pointer_slots(func);
    let const_lens = builtin_const_lens(func);
    let old_body = std::mem::take(&mut func.body);

    let mut cx = Cx {
        func,
        registry,
        config,
        interner,
        used,
        const_lens,
        bounds_of: HashMap::new(),
        out: Vec::new(),
        label: 0,
    };

    // Map from old instruction index to new index (within `out`, before the
    // preamble is prepended).
    let mut index_map = vec![0usize; old_body.len() + 1];

    for (i, instr) in old_body.iter().enumerate() {
        index_map[i] = cx.out.len();
        cx.rewrite(instr, i);
    }
    index_map[old_body.len()] = cx.out.len();

    // Preamble: default (wide) bounds for every bounds slot plus the
    // parameter checks of rule (a).
    let mut preamble = Vec::new();
    let mut bounds_slots: Vec<_> = cx.bounds_of.values().copied().collect();
    bounds_slots.sort_unstable();
    for b in bounds_slots {
        preamble.push(Instr::WideBounds { dst: b });
    }
    let params: Vec<(Slot, Type)> = cx
        .func
        .params
        .iter()
        .map(|p| (p.slot, p.ty.clone()))
        .collect();
    for (slot, ty) in params {
        if !ty.is_pointer() || !cx.used.contains(&slot) {
            continue;
        }
        let Some(pointee) = ty.pointee().cloned() else {
            continue;
        };
        if let Some(check) = cx.input_check_instr(slot, &pointee, "param") {
            preamble.push(check);
        }
    }

    let offset = preamble.len();
    let mut body = preamble;
    body.extend(cx.out);

    // Patch jump targets.
    for instr in body.iter_mut() {
        match instr {
            Instr::Jump { target } => *target = index_map[*target] + offset,
            Instr::Branch {
                then_target,
                else_target,
                ..
            } => {
                *then_target = index_map[*then_target] + offset;
                *else_target = index_map[*else_target] + offset;
            }
            _ => {}
        }
    }

    func.body = body;

    if config.optimize {
        remove_redundant_checks(func);
    }
}

struct Cx<'a> {
    func: &'a mut Function,
    registry: &'a TypeRegistry,
    config: &'a PassConfig,
    interner: &'a mut TypeInterner,
    used: HashSet<Slot>,
    /// Resolved constant byte lengths of mem-builtin calls, by old index.
    const_lens: HashMap<usize, u64>,
    bounds_of: HashMap<Slot, Slot>,
    out: Vec<Instr>,
    label: usize,
}

impl<'a> Cx<'a> {
    fn loc(&mut self, what: &str) -> Arc<str> {
        self.label += 1;
        Arc::from(format!("{}#{}:{}", self.func.name, self.label, what))
    }

    fn bounds_slot(&mut self, ptr: Slot) -> Slot {
        if let Some(&b) = self.bounds_of.get(&ptr) {
            return b;
        }
        let b = self.func.new_slot();
        self.bounds_of.insert(ptr, b);
        b
    }

    fn size_of(&self, ty: &Type) -> u64 {
        self.registry.size_of(ty).unwrap_or(1).max(1)
    }

    fn tracks_bounds(&self) -> bool {
        self.config.bounds_check_accesses
            || self.config.bounds_check_escapes
            || self.config.narrow_fields
    }

    /// The rule (a)–(d) input-pointer check for `ptr` against static
    /// element type `pointee`, or `None` when the configuration does not
    /// check inputs.
    fn input_check_instr(&mut self, ptr: Slot, pointee: &Type, what: &str) -> Option<Instr> {
        let dst = self.bounds_slot(ptr);
        match self.config.input_check {
            InputCheck::None => None,
            InputCheck::TypeCheck => Some(Instr::TypeCheck {
                dst,
                ptr,
                ty_id: self.interner.intern(pointee),
                ty: pointee.clone(),
                loc: self.loc(what),
            }),
            InputCheck::BoundsGet => Some(Instr::BoundsGet { dst, ptr }),
        }
    }

    fn emit_input_check(&mut self, ptr: Slot, pointee: &Type, what: &str) {
        if let Some(i) = self.input_check_instr(ptr, pointee, what) {
            self.out.push(i);
        }
    }

    fn emit_access_guard(&mut self, ptr: Slot, size: u64, write: bool, what: &str) {
        if self.config.bounds_check_accesses {
            let bounds = self.bounds_slot(ptr);
            let loc = self.loc(what);
            self.out.push(Instr::BoundsCheck {
                ptr,
                bounds,
                size,
                escape: false,
                loc,
            });
        }
        if self.config.access_check {
            let loc = self.loc(what);
            self.out.push(Instr::AccessCheck {
                ptr,
                size,
                write,
                loc,
            });
        }
    }

    fn emit_escape_guard(&mut self, ptr_value: Slot, pointee_size: u64, what: &str) {
        if !self.config.bounds_check_escapes {
            return;
        }
        let bounds = self.bounds_slot(ptr_value);
        let loc = self.loc(what);
        self.out.push(Instr::BoundsCheck {
            ptr: ptr_value,
            bounds,
            size: pointee_size,
            escape: true,
            loc,
        });
    }

    fn propagate_bounds(&mut self, dst: Slot, src: Slot) {
        if !self.tracks_bounds() {
            return;
        }
        let bsrc = self.bounds_slot(src);
        let bdst = self.bounds_slot(dst);
        self.out.push(Instr::Copy {
            dst: bdst,
            src: bsrc,
        });
    }

    fn rewrite(&mut self, instr: &Instr, index: usize) {
        match instr {
            // ----- rule (g): dereferences -----
            Instr::Load { dst, ptr, ty } => {
                let size = self.size_of(ty);
                self.emit_access_guard(*ptr, size, false, "load");
                self.out.push(instr.clone());
                // rule (c): pointers read from memory are inputs.
                if ty.is_pointer() && self.used.contains(dst) {
                    if let Some(pointee) = ty.pointee().cloned() {
                        self.emit_input_check(*dst, &pointee, "loaded-ptr");
                    }
                }
            }
            Instr::Store { ptr, src, ty } => {
                let size = self.size_of(ty);
                // Escaping pointer values are bounds-checked (rule (g)).
                if ty.is_pointer() {
                    let psize = ty.pointee().map(|p| self.size_of(p)).unwrap_or(1);
                    self.emit_escape_guard(*src, psize, "ptr-escape-store");
                }
                self.emit_access_guard(*ptr, size, true, "store");
                self.out.push(instr.clone());
            }

            // ----- rules (e)/(f): derived pointers -----
            Instr::FieldAddr {
                dst,
                base,
                field_size,
                ..
            } => {
                self.out.push(instr.clone());
                if self.config.narrow_fields {
                    let bbase = self.bounds_slot(*base);
                    let bdst = self.bounds_slot(*dst);
                    self.out.push(Instr::BoundsNarrow {
                        dst: bdst,
                        bounds: bbase,
                        field_base: *dst,
                        size: *field_size,
                    });
                } else {
                    self.propagate_bounds(*dst, *base);
                }
            }
            Instr::PtrAdd { dst, base, .. } => {
                self.out.push(instr.clone());
                self.propagate_bounds(*dst, *base);
            }
            Instr::Copy { dst, src } => {
                self.out.push(instr.clone());
                self.propagate_bounds(*dst, *src);
            }

            // ----- rule (d): casts -----
            Instr::Cast {
                dst,
                src,
                kind,
                from_ty,
                to_ty,
                explicit,
            } => {
                self.out.push(instr.clone());
                let pointer_result =
                    to_ty.is_pointer() && matches!(kind, CastKind::Bit | CastKind::IntToPtr);
                if !pointer_result {
                    return;
                }
                let pointee = to_ty.pointee().cloned().unwrap_or_else(Type::void);
                // Cast-site checking (EffectiveSan-type / TypeSan / HexType):
                // applied to explicit casts regardless of use.
                if self.config.cast_check_explicit && *explicit {
                    let class_ok = !self.config.cast_check_classes_only || pointee.is_record();
                    if class_ok && !pointee.is_void() {
                        let b = self.bounds_slot(*dst);
                        let loc = self.loc("cast");
                        self.out.push(Instr::CastCheck {
                            dst: b,
                            ptr: *dst,
                            ty_id: self.interner.intern(&pointee),
                            ty: pointee,
                            loc,
                        });
                    }
                    return;
                }
                // Full/bounds variants treat cast results as input pointers
                // when used.  A cast that cannot change the checked type
                // (same pointee) just forwards the bounds — one of the §6
                // "checks that can never fail" optimizations.
                if self.config.input_check != InputCheck::None && self.used.contains(dst) {
                    if from_ty.pointee() == to_ty.pointee() && *kind == CastKind::Bit {
                        self.propagate_bounds(*dst, *src);
                    } else if pointee.is_void() {
                        // void* results carry no checkable type; keep the
                        // original bounds.
                        self.propagate_bounds(*dst, *src);
                    } else {
                        self.emit_input_check(*dst, &pointee, "cast");
                    }
                } else {
                    self.propagate_bounds(*dst, *src);
                }
            }

            // ----- rule (b): call returns; escapes of pointer arguments -----
            Instr::Call {
                dst,
                args,
                arg_tys,
                ret_ty,
                ..
            } => {
                if self.config.bounds_check_escapes {
                    let escapes: Vec<(Slot, u64)> = args
                        .iter()
                        .zip(arg_tys)
                        .filter(|(_, t)| t.is_pointer())
                        .map(|(a, t)| (*a, t.pointee().map(|p| self.size_of(p)).unwrap_or(1)))
                        .collect();
                    for (a, sz) in escapes {
                        self.emit_escape_guard(a, sz, "ptr-escape-arg");
                    }
                }
                self.out.push(instr.clone());
                if let Some(d) = dst {
                    if ret_ty.is_pointer() && self.used.contains(d) {
                        if let Some(pointee) = ret_ty.pointee().cloned() {
                            self.emit_input_check(*d, &pointee, "call-ret");
                        }
                    }
                }
            }
            Instr::CallBuiltin {
                dst,
                builtin,
                args,
                ret_ty,
                ..
            } => {
                // memcpy/memset-style builtins dereference their pointer
                // arguments inside the runtime; bounds-check them here like
                // any other use.  Only the actually-pointer-typed arguments
                // are guarded (memset's second argument is the fill byte),
                // and when the length operand is a compile-time constant the
                // guard covers the full `[p, p+n)` range instead of one byte.
                let derefs = matches!(
                    builtin,
                    Builtin::Memcpy | Builtin::Memmove | Builtin::Memset | Builtin::Strlen
                );
                if derefs && (self.config.bounds_check_escapes || self.config.access_check) {
                    let size = self.const_lens.get(&index).copied().unwrap_or(1).max(1);
                    let ptr_args: Vec<Slot> =
                        args.iter().take(builtin.pointer_args()).copied().collect();
                    for (i, a) in ptr_args.into_iter().enumerate() {
                        self.emit_escape_guard(a, size, "builtin-arg");
                        if self.config.access_check {
                            // Interceptor-style range check: ASan, Memcheck
                            // and CETS hook the libc mem functions
                            // themselves, so they see the whole range.
                            let write = i == 0 && !matches!(builtin, Builtin::Strlen);
                            let loc = self.loc("builtin-arg");
                            self.out.push(Instr::AccessCheck {
                                ptr: a,
                                size,
                                write,
                                loc,
                            });
                        }
                    }
                }
                self.out.push(instr.clone());
                if let Some(d) = dst {
                    if ret_ty.is_pointer() && self.used.contains(d) {
                        if let Some(pointee) = ret_ty.pointee().cloned() {
                            self.emit_input_check(*d, &pointee, "alloc-ret");
                        }
                    }
                }
            }

            // ----- fresh objects: allocas and globals -----
            Instr::Alloca { dst, ty, .. } => {
                self.out.push(instr.clone());
                if self.used.contains(dst) {
                    self.emit_input_check(*dst, &ty.clone(), "alloca");
                }
            }
            Instr::GlobalAddr { dst, name } => {
                self.out.push(instr.clone());
                if self.used.contains(dst) {
                    // The global's element type is not tracked on the
                    // instruction; a bounds_get is always valid, and a type
                    // check against char (byte access) is the conservative
                    // choice that never raises a false alarm.
                    let _ = name;
                    match self.config.input_check {
                        InputCheck::None => {}
                        InputCheck::TypeCheck | InputCheck::BoundsGet => {
                            let d = self.bounds_slot(*dst);
                            self.out.push(Instr::BoundsGet { dst: d, ptr: *dst });
                        }
                    }
                }
            }

            // ----- returns of pointers escape -----
            Instr::Return { value } => {
                if let (Some(v), true) = (value, self.config.bounds_check_escapes) {
                    if self.func.ret.is_pointer() && self.bounds_of.contains_key(v) {
                        let sz = self
                            .func
                            .ret
                            .pointee()
                            .map(|p| self.size_of(p))
                            .unwrap_or(1);
                        self.emit_escape_guard(*v, sz, "ptr-escape-return");
                    }
                }
                self.out.push(instr.clone());
            }

            // Everything else is copied verbatim.
            other => self.out.push(other.clone()),
        }
    }
}

/// Resolve the byte length of each `memcpy`/`memmove`/`memset` call whose
/// length operand is a compile-time constant reaching the call on every
/// path, keyed by the call's body index.
///
/// The backward scan is deliberately conservative: it gives up at the
/// first redefinition that is not a plain constant, at terminators, and as
/// soon as a jump target sits between the candidate definition and the
/// call (another path could reach the call with a different length).
fn builtin_const_lens(func: &Function) -> HashMap<usize, u64> {
    let mut jump_target = vec![false; func.body.len() + 1];
    for instr in &func.body {
        match instr {
            Instr::Jump { target } => jump_target[*target] = true,
            Instr::Branch {
                then_target,
                else_target,
                ..
            } => {
                jump_target[*then_target] = true;
                jump_target[*else_target] = true;
            }
            _ => {}
        }
    }
    let mut lens = HashMap::new();
    for (i, instr) in func.body.iter().enumerate() {
        let Instr::CallBuiltin { builtin, args, .. } = instr else {
            continue;
        };
        if !matches!(
            builtin,
            Builtin::Memcpy | Builtin::Memmove | Builtin::Memset
        ) {
            continue;
        }
        let Some(&len_slot) = args.get(2) else {
            continue;
        };
        for j in (0..i).rev() {
            if jump_target[j + 1] {
                break;
            }
            let def = &func.body[j];
            if def.is_terminator() {
                break;
            }
            if def.dst() == Some(len_slot) {
                if let Instr::Const {
                    value: Const::Int(n),
                    ..
                } = def
                {
                    lens.insert(i, (*n).max(0) as u64);
                }
                break;
            }
        }
    }
    lens
}

/// Compute the set of slots holding pointers that are *used* — dereferenced,
/// used as the base of a derived pointer that is used, or escaping (stored,
/// passed, returned).  Only these attract rule (a)–(d) checks.
fn used_pointer_slots(func: &Function) -> HashSet<Slot> {
    let mut used: HashSet<Slot> = HashSet::new();
    // Direct uses.
    for instr in &func.body {
        match instr {
            Instr::Load { ptr, .. } => {
                used.insert(*ptr);
            }
            Instr::Store { ptr, src, ty } => {
                used.insert(*ptr);
                if ty.is_pointer() {
                    used.insert(*src);
                }
            }
            Instr::Call { args, arg_tys, .. } => {
                for (a, t) in args.iter().zip(arg_tys) {
                    if t.is_pointer() {
                        used.insert(*a);
                    }
                }
            }
            Instr::CallBuiltin { builtin, args, .. } => {
                // Only the pointer-typed arguments count as pointer uses:
                // memset's fill byte and realloc's size are plain integers.
                for a in args.iter().take(builtin.pointer_args()) {
                    used.insert(*a);
                }
            }
            // NOTE: returning a pointer is *not* counted as a use on its
            // own — "a function that merely casts and returns a pointer
            // will not attract instrumentation" (§4); the caller checks the
            // returned pointer when it uses it.
            _ => {}
        }
    }
    // Propagate backwards through derivations until a fixpoint: if a derived
    // pointer is used, its base is used too.
    loop {
        let mut changed = false;
        for instr in &func.body {
            let (dst, srcs): (Slot, Vec<Slot>) = match instr {
                Instr::PtrAdd { dst, base, .. } => (*dst, vec![*base]),
                Instr::FieldAddr { dst, base, .. } => (*dst, vec![*base]),
                Instr::Cast { dst, src, .. } => (*dst, vec![*src]),
                Instr::Copy { dst, src } => (*dst, vec![*src]),
                _ => continue,
            };
            if used.contains(&dst) {
                for s in srcs {
                    changed |= used.insert(s);
                }
            }
        }
        if !changed {
            break;
        }
    }
    used
}

/// Remove checks that are trivially redundant: an identical `bounds_check`
/// repeated within the same straight-line region with no intervening
/// redefinition of the pointer or bounds slot (the "removing subsumed bounds
/// checks" optimization of §6).  Removed instructions become `Nop`s so jump
/// targets stay valid.
fn remove_redundant_checks(func: &mut Function) {
    // Straight-line region boundaries: any instruction that is the target
    // of a jump/branch starts a new region.
    let mut region_start = vec![false; func.body.len() + 1];
    for instr in &func.body {
        match instr {
            Instr::Jump { target } => region_start[*target] = true,
            Instr::Branch {
                then_target,
                else_target,
                ..
            } => {
                region_start[*then_target] = true;
                region_start[*else_target] = true;
            }
            _ => {}
        }
    }

    let mut seen: HashSet<(Slot, Slot, u64, bool)> = HashSet::new();
    // `region_start` is one entry longer than the body (jumps may target
    // one-past-the-end), so iterate the body's indices, not the markers.
    #[allow(clippy::needless_range_loop)]
    for i in 0..func.body.len() {
        if region_start[i] || func.body[i].is_terminator() {
            seen.clear();
        }
        match &func.body[i] {
            Instr::BoundsCheck {
                ptr,
                bounds,
                size,
                escape,
                ..
            } => {
                let key = (*ptr, *bounds, *size, *escape);
                if !seen.insert(key) {
                    func.body[i] = Instr::Nop;
                }
            }
            other => {
                // A write to a slot invalidates remembered checks that
                // mention it.
                if let Some(dst) = other.dst() {
                    seen.retain(|(p, b, _, _)| *p != dst && *b != dst);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(func: &Function, pred: impl Fn(&Instr) -> bool) -> usize {
        func.body.iter().filter(|i| pred(i)).count()
    }

    /// The paper's Figure 4 functions.
    fn figure4_program() -> Program {
        minic::compile(
            "struct node { int value; struct node *next; };
             int length(struct node *xs) {
                 int len = 0;
                 while (xs != NULL) {
                     len++;
                     xs = xs->next;
                 }
                 return len;
             }
             int sum(int *a, int len) {
                 int s = 0;
                 for (int i = 0; i < len; i++) { s += a[i]; }
                 return s;
             }",
        )
        .unwrap()
    }

    #[test]
    fn figure4_sum_gets_exactly_one_type_check() {
        let p = instrument_program(&figure4_program(), SanitizerKind::EffectiveFull);
        let sum = p.function("sum").unwrap();
        assert_eq!(
            count(sum, |i| matches!(i, Instr::TypeCheck { .. })),
            1,
            "sum type-checks its input pointer exactly once, outside the loop"
        );
        assert!(count(sum, |i| matches!(i, Instr::BoundsCheck { .. })) >= 1);
    }

    #[test]
    fn figure4_length_checks_loaded_pointers() {
        let p = instrument_program(&figure4_program(), SanitizerKind::EffectiveFull);
        let length = p.function("length").unwrap();
        // Two static type checks: the parameter and the pointer loaded from
        // memory inside the loop (executed O(N) times).
        assert_eq!(count(length, |i| matches!(i, Instr::TypeCheck { .. })), 2);
        // The field access narrows bounds.
        assert!(count(length, |i| matches!(i, Instr::BoundsNarrow { .. })) >= 1);
    }

    #[test]
    fn uninstrumented_program_is_unchanged() {
        let p = figure4_program();
        let out = instrument_program(&p, SanitizerKind::None);
        assert_eq!(out.check_count(), 0);
        assert_eq!(out.instruction_count(), p.instruction_count());
    }

    #[test]
    fn bounds_variant_uses_bounds_get_and_no_narrowing() {
        let p = instrument_program(&figure4_program(), SanitizerKind::EffectiveBounds);
        let length = p.function("length").unwrap();
        assert_eq!(count(length, |i| matches!(i, Instr::TypeCheck { .. })), 0);
        assert!(count(length, |i| matches!(i, Instr::BoundsGet { .. })) >= 1);
        assert_eq!(
            count(length, |i| matches!(i, Instr::BoundsNarrow { .. })),
            0
        );
        assert!(count(length, |i| matches!(i, Instr::BoundsCheck { .. })) >= 1);
    }

    #[test]
    fn type_variant_only_checks_casts() {
        let src = "struct S { int x; };
             struct T { float y; };
             int use_it(struct T *t) { return 1; }
             int f(struct S *s) {
                 struct T *t = (struct T *)s;
                 return use_it(t) + s->x;
             }";
        let p = minic::compile(src).unwrap();
        let full = instrument_program(&p, SanitizerKind::EffectiveType);
        let f = full.function("f").unwrap();
        assert_eq!(count(f, |i| matches!(i, Instr::CastCheck { .. })), 1);
        assert_eq!(count(f, |i| matches!(i, Instr::TypeCheck { .. })), 0);
        assert_eq!(count(f, |i| matches!(i, Instr::BoundsCheck { .. })), 0);
    }

    #[test]
    fn typesan_only_checks_class_casts() {
        let src = "class Base { int x; };
             class Derived : public Base { int y; };
             void sink(Derived *d) {}
             void sink2(int *p) {}
             void f(Base *b, char *buf) {
                 Derived *d = (Derived *)b;
                 int *p = (int *)buf;
                 sink(d);
                 sink2(p);
             }";
        let p = minic::compile(src).unwrap();
        let typesan = instrument_program(&p, SanitizerKind::TypeSan);
        let f = typesan.function("f").unwrap();
        // Only the class cast is instrumented, not the scalar cast.
        assert_eq!(count(f, |i| matches!(i, Instr::CastCheck { .. })), 1);
        // EffectiveSan-type instruments both.
        let est = instrument_program(&p, SanitizerKind::EffectiveType);
        let f = est.function("f").unwrap();
        assert_eq!(count(f, |i| matches!(i, Instr::CastCheck { .. })), 2);
    }

    #[test]
    fn asan_inserts_access_checks_only() {
        let p = instrument_program(&figure4_program(), SanitizerKind::AddressSanitizer);
        let sum = p.function("sum").unwrap();
        assert!(count(sum, |i| matches!(i, Instr::AccessCheck { .. })) >= 1);
        assert_eq!(count(sum, |i| matches!(i, Instr::TypeCheck { .. })), 0);
        assert_eq!(count(sum, |i| matches!(i, Instr::BoundsCheck { .. })), 0);
    }

    #[test]
    fn unused_pointers_are_not_type_checked() {
        // A function that merely casts and returns a pointer attracts no
        // input-pointer instrumentation (§4).
        let src = "struct S { int x; };
             struct T { int y; };
             struct T *just_cast(struct S *s) { return (struct T *)s; }";
        let p = minic::compile(src).unwrap();
        let out = instrument_program(&p, SanitizerKind::EffectiveFull);
        let f = out.function("just_cast").unwrap();
        assert_eq!(count(f, |i| matches!(i, Instr::TypeCheck { .. })), 0);
    }

    #[test]
    fn stores_of_pointers_get_escape_checks() {
        let src = "struct node { struct node *next; };
             void link(struct node *a, struct node *b) { a->next = b; }";
        let p = minic::compile(src).unwrap();
        let out = instrument_program(&p, SanitizerKind::EffectiveFull);
        let f = out.function("link").unwrap();
        assert!(count(f, |i| matches!(i, Instr::BoundsCheck { escape: true, .. })) >= 1);
        assert!(count(f, |i| matches!(i, Instr::BoundsCheck { escape: false, .. })) >= 1);
    }

    #[test]
    fn escapes_off_drops_only_the_escape_checks() {
        let src = "struct node { struct node *next; };
             void link(struct node *a, struct node *b) { a->next = b; }";
        let p = minic::compile(src).unwrap();
        let full = instrument_program(&p, SanitizerKind::EffectiveFull);
        let off = instrument_program(&p, SanitizerKind::EffectiveEscapesOff);
        let f_full = full.function("link").unwrap();
        let f_off = off.function("link").unwrap();
        // The ablation keeps type checks and dereference bounds checks...
        assert_eq!(
            count(f_off, |i| matches!(i, Instr::TypeCheck { .. })),
            count(f_full, |i| matches!(i, Instr::TypeCheck { .. }))
        );
        assert!(
            count(f_off, |i| matches!(
                i,
                Instr::BoundsCheck { escape: false, .. }
            )) >= 1
        );
        // ...but emits no pointer-escape checks at all.
        assert!(
            count(f_full, |i| matches!(
                i,
                Instr::BoundsCheck { escape: true, .. }
            )) >= 1
        );
        assert_eq!(
            count(f_off, |i| matches!(
                i,
                Instr::BoundsCheck { escape: true, .. }
            )),
            0
        );
    }

    #[test]
    fn mpx_pass_checks_accesses_without_narrowing() {
        let p = instrument_program(&figure4_program(), SanitizerKind::Mpx);
        let length = p.function("length").unwrap();
        assert!(count(length, |i| matches!(i, Instr::BoundsGet { .. })) >= 1);
        assert!(count(length, |i| matches!(i, Instr::BoundsCheck { .. })) >= 1);
        assert_eq!(
            count(length, |i| matches!(i, Instr::BoundsNarrow { .. })),
            0,
            "MPX does not narrow to sub-objects"
        );
        assert_eq!(count(length, |i| matches!(i, Instr::TypeCheck { .. })), 0);
    }

    #[test]
    fn memcheck_pass_is_access_check_only_like_asan() {
        let p = instrument_program(&figure4_program(), SanitizerKind::Memcheck);
        let sum = p.function("sum").unwrap();
        assert!(count(sum, |i| matches!(i, Instr::AccessCheck { .. })) >= 1);
        assert_eq!(count(sum, |i| matches!(i, Instr::TypeCheck { .. })), 0);
        assert_eq!(count(sum, |i| matches!(i, Instr::BoundsCheck { .. })), 0);
    }

    #[test]
    fn same_type_casts_are_not_checked() {
        // (T*) cast of something already T*: the check can never fail and
        // is optimized away; bounds are just forwarded.
        let src = "struct T { int x; };
             int f(struct T *t) { struct T *u = (struct T *)t; return u->x; }";
        let p = minic::compile(src).unwrap();
        let out = instrument_program(&p, SanitizerKind::EffectiveFull);
        let f = out.function("f").unwrap();
        // Exactly one type check: the parameter.  The cast adds none.
        assert_eq!(count(f, |i| matches!(i, Instr::TypeCheck { .. })), 1);
    }

    #[test]
    fn redundant_bounds_checks_are_removed() {
        let src = "struct P { int x; int y; };
             int f(struct P *p) { return p->x + p->x; }";
        let p = minic::compile(src).unwrap();
        let unopt = instrument_program_with(
            &p,
            PassConfig {
                optimize: false,
                ..SanitizerKind::EffectiveFull.config()
            },
        );
        let opt = instrument_program(&p, SanitizerKind::EffectiveFull);
        let f_unopt = unopt.function("f").unwrap();
        let f_opt = opt.function("f").unwrap();
        let n_unopt = count(f_unopt, |i| matches!(i, Instr::BoundsCheck { .. }));
        let n_opt = count(f_opt, |i| matches!(i, Instr::BoundsCheck { .. }));
        assert!(
            n_opt <= n_unopt,
            "optimization must not add checks ({n_opt} vs {n_unopt})"
        );
    }

    #[test]
    fn jump_targets_remain_valid_after_instrumentation() {
        let p = instrument_program(&figure4_program(), SanitizerKind::EffectiveFull);
        for func in p.functions.values() {
            let len = func.body.len();
            for instr in &func.body {
                match instr {
                    Instr::Jump { target } => assert!(*target <= len),
                    Instr::Branch {
                        then_target,
                        else_target,
                        ..
                    } => {
                        assert!(*then_target <= len);
                        assert!(*else_target <= len);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn check_counts_scale_with_coverage() {
        // Full > bounds > type in static check counts for a pointer-heavy
        // function, mirroring the coverage/overhead trade-off of §6.2.
        let p = figure4_program();
        let full = instrument_program(&p, SanitizerKind::EffectiveFull).check_count();
        let bounds = instrument_program(&p, SanitizerKind::EffectiveBounds).check_count();
        let ty = instrument_program(&p, SanitizerKind::EffectiveType).check_count();
        assert!(full >= bounds, "full={full} bounds={bounds}");
        assert!(bounds > ty, "bounds={bounds} type={ty}");
    }
}
