//! Sanitizer kinds and pass configurations, re-exported from `san-api`.
//!
//! [`SanitizerKind`] and [`PassConfig`] moved to the `san-api` crate so the
//! backend registry, the instrumentation pass and the VM all share one
//! definition; this module re-exports them for compatibility with existing
//! `instrument::config` imports.

pub use san_api::{InputCheck, ParseSanitizerKindError, PassConfig, SanitizerKind};
