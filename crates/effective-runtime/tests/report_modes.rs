//! Tests for `ReportMode` semantics (logging / counting / abort-after-N)
//! and the `FREE` type on use-after-free, asserting exact `ErrorStats`
//! counts end-to-end through `TypeCheckRuntime`.

use std::sync::Arc;

use effective_runtime::{ErrorKind, ReportMode, ReporterConfig, RuntimeConfig, TypeCheckRuntime};
use effective_types::{FieldDef, RecordDef, Type, TypeRegistry};
use lowfat::{AllocKind, AllocatorConfig};

fn registry() -> Arc<TypeRegistry> {
    let mut reg = TypeRegistry::new();
    reg.define(RecordDef::struct_(
        "S",
        vec![
            FieldDef::new("a", Type::array(Type::int(), 3)),
            FieldDef::new("s", Type::char_ptr()),
        ],
    ))
    .unwrap();
    Arc::new(reg)
}

fn runtime_with(reporter: ReporterConfig) -> TypeCheckRuntime {
    TypeCheckRuntime::new(
        registry(),
        RuntimeConfig {
            reporter,
            allocator: AllocatorConfig::default(),
        },
    )
}

fn loc(s: &str) -> Arc<str> {
    Arc::from(s)
}

#[test]
fn logging_mode_keeps_one_record_per_distinct_issue() {
    let mut rt = runtime_with(ReporterConfig {
        mode: ReportMode::Log,
        abort_after: None,
    });
    let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
    // The same failing check from the same offset, three times: one bucket.
    for _ in 0..3 {
        rt.type_check(p, &Type::double(), &loc("site-a"));
    }
    // A different static type at the same offset: a second bucket.
    rt.type_check(p, &Type::struct_("missing"), &loc("site-b"));

    let stats = rt.reporter().stats();
    assert_eq!(stats.total_events, 4);
    assert_eq!(stats.distinct_issues, 2);
    assert_eq!(stats.events_of(ErrorKind::TypeConfusion), 4);
    assert_eq!(stats.issues_of(ErrorKind::TypeConfusion), 2);
    assert_eq!(stats.type_issues(), 2);
    assert_eq!(stats.bounds_issues(), 0);
    assert_eq!(stats.temporal_issues(), 0);
    // Log mode retains exactly one record per distinct issue.
    assert_eq!(rt.reporter().records().len(), 2);
    assert!(rt
        .reporter()
        .records()
        .iter()
        .all(|r| r.kind == ErrorKind::TypeConfusion));
}

#[test]
fn counting_mode_counts_identically_but_keeps_no_records() {
    let run = |mode: ReportMode| {
        let mut rt = runtime_with(ReporterConfig {
            mode,
            abort_after: None,
        });
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        for _ in 0..3 {
            rt.type_check(p, &Type::double(), &loc("site"));
        }
        rt.type_free(p, &loc("free"));
        rt.type_check(p, &Type::struct_("S"), &loc("uaf"));
        rt
    };

    let logged = run(ReportMode::Log);
    let counted = run(ReportMode::Count);

    // The statistics are identical across modes...
    assert_eq!(logged.reporter().stats(), counted.reporter().stats());
    assert_eq!(counted.reporter().stats().total_events, 4);
    assert_eq!(counted.reporter().stats().distinct_issues, 2);
    // ...but only logging mode retains records.
    assert_eq!(logged.reporter().records().len(), 2);
    assert!(counted.reporter().records().is_empty());
}

#[test]
fn abort_after_n_halts_the_runtime_at_exactly_n_events() {
    let mut rt = runtime_with(ReporterConfig {
        mode: ReportMode::Log,
        abort_after: Some(3),
    });
    let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
    // Each failing check is one event (all land in the same bucket, which
    // must NOT matter: abort-after counts events, not distinct issues).
    rt.type_check(p, &Type::double(), &loc("e1"));
    assert!(!rt.halted(), "1 event < limit 3");
    rt.type_check(p, &Type::double(), &loc("e1"));
    assert!(!rt.halted(), "2 events < limit 3");
    rt.type_check(p, &Type::double(), &loc("e1"));
    assert!(rt.halted(), "3rd event reaches the limit");
    assert_eq!(rt.reporter().stats().total_events, 3);
    assert_eq!(rt.reporter().stats().distinct_issues, 1);
}

#[test]
fn successful_checks_never_count_toward_abort() {
    let mut rt = runtime_with(ReporterConfig {
        mode: ReportMode::Count,
        abort_after: Some(1),
    });
    let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
    for _ in 0..100 {
        rt.type_check(p, &Type::struct_("S"), &loc("ok"));
    }
    assert!(!rt.halted());
    assert_eq!(rt.reporter().stats().total_events, 0);
    // The very first error trips the limit.
    rt.type_check(p, &Type::double(), &loc("bad"));
    assert!(rt.halted());
}

#[test]
fn use_after_free_binds_the_free_type_with_exact_counts() {
    let mut rt = runtime_with(ReporterConfig::default());
    let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
    assert_eq!(rt.dynamic_type_of(p), Some(&Type::struct_("S")));
    assert!(rt.type_free(p, &loc("free")));
    // The dynamic type is now the special FREE type.
    assert_eq!(rt.dynamic_type_of(p), Some(&Type::Free));

    // Every use of the dangling pointer is a UseAfterFree event; identical
    // sites share one bucket.
    for _ in 0..5 {
        assert!(rt.type_check(p, &Type::struct_("S"), &loc("uaf")).is_wide());
    }
    let stats = rt.reporter().stats();
    assert_eq!(stats.events_of(ErrorKind::UseAfterFree), 5);
    assert_eq!(stats.issues_of(ErrorKind::UseAfterFree), 1);
    assert_eq!(stats.temporal_issues(), 1);
    assert_eq!(stats.type_issues(), 0, "UAF is temporal, not a type issue");

    // Freeing again is a DoubleFree on the FREE-typed object.
    assert!(!rt.type_free(p, &loc("free2")));
    let stats = rt.reporter().stats();
    assert_eq!(stats.issues_of(ErrorKind::DoubleFree), 1);
    assert_eq!(stats.temporal_issues(), 2);
    assert_eq!(stats.total_events, 6);
    assert_eq!(stats.distinct_issues, 2);
}

#[test]
fn uaf_at_different_offsets_opens_distinct_issues() {
    let mut rt = runtime_with(ReporterConfig::default());
    let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
    rt.type_free(p, &loc("free"));
    // Offsets are part of the bucket key, so probing two different fields
    // of the freed object reports two distinct issues.
    rt.type_check(p, &Type::int(), &loc("field-a"));
    rt.type_check(p.add(16), &Type::char_ptr(), &loc("field-s"));
    let stats = rt.reporter().stats();
    assert_eq!(stats.events_of(ErrorKind::UseAfterFree), 2);
    assert_eq!(stats.issues_of(ErrorKind::UseAfterFree), 2);
}
