//! The `BOUNDS` values propagated by the instrumentation (paper §4).
//!
//! Bounds are represented "by a pair of pointers" delimiting the address
//! range for which the checked static type is valid.  `type_check` returns
//! sub-object bounds, `bounds_narrow` intersects them with a field's range,
//! and `bounds_check` verifies an access falls entirely inside them.
//! Legacy pointers and failed checks yield the *wide bounds*
//! `0..UINTPTR_MAX` for compatibility (Fig. 6 lines 11–12, 23).

use lowfat::Ptr;
use serde::{Deserialize, Serialize};

/// An address range `[lo, hi)` within which an access is permitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bounds {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl Bounds {
    /// The wide bounds `0 .. UINTPTR_MAX` returned for legacy pointers and
    /// after errors: every access passes.
    pub const WIDE: Bounds = Bounds {
        lo: 0,
        hi: u64::MAX,
    };

    /// The empty bounds: every access of one or more bytes fails.  (A
    /// degenerate zero-size access exactly at `lo` still passes, like a
    /// past-the-end pointer that is compared but never dereferenced.)
    pub const EMPTY: Bounds = Bounds { lo: 1, hi: 1 };

    /// Bounds covering `[lo, hi)`.
    pub fn new(lo: u64, hi: u64) -> Self {
        Bounds { lo, hi: hi.max(lo) }
    }

    /// Bounds covering `size` bytes starting at `base`.
    pub fn from_base_size(base: Ptr, size: u64) -> Self {
        Bounds::new(base.addr(), base.addr().saturating_add(size))
    }

    /// Are these the wide (always-pass) bounds?
    pub fn is_wide(&self) -> bool {
        *self == Bounds::WIDE
    }

    /// Width in bytes.
    pub fn width(&self) -> u64 {
        self.hi - self.lo
    }

    /// The `bounds_narrow` operation: interval intersection.
    pub fn narrow(&self, other: Bounds) -> Bounds {
        Bounds {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi).max(self.lo.max(other.lo)),
        }
    }

    /// Does an access of `size` bytes at `ptr` fall entirely inside the
    /// bounds?  This is the predicate of the `bounds_check` function:
    /// an error is raised iff `{p .. p+size} ∩ b ≠ {p .. p+size}`.
    pub fn contains_access(&self, ptr: Ptr, size: u64) -> bool {
        let lo = ptr.addr();
        let hi = lo.saturating_add(size);
        lo >= self.lo && hi <= self.hi
    }

    /// Does the bounds contain the single address `ptr`?
    pub fn contains_ptr(&self, ptr: Ptr) -> bool {
        (self.lo..self.hi).contains(&ptr.addr())
    }
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds::WIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_bounds_admit_everything() {
        assert!(Bounds::WIDE.contains_access(Ptr(0), 8));
        assert!(Bounds::WIDE.contains_access(Ptr(u64::MAX - 8), 8));
        assert!(Bounds::WIDE.is_wide());
        assert_eq!(Bounds::default(), Bounds::WIDE);
    }

    #[test]
    fn empty_bounds_admit_nothing() {
        // A zero-size access is degenerate: it passes exactly at the
        // boundary point and nowhere else.
        assert!(Bounds::EMPTY.contains_access(Ptr(1), 0));
        assert!(!Bounds::EMPTY.contains_access(Ptr(0), 0));
        assert!(!Bounds::EMPTY.contains_access(Ptr(1), 1));
        assert_eq!(Bounds::EMPTY.width(), 0);
    }

    #[test]
    fn narrowing_is_intersection() {
        let a = Bounds::new(100, 200);
        let b = Bounds::new(150, 300);
        assert_eq!(a.narrow(b), Bounds::new(150, 200));
        assert_eq!(b.narrow(a), Bounds::new(150, 200));
        // Disjoint ranges narrow to an empty range (never negative).
        let c = Bounds::new(400, 500);
        assert_eq!(a.narrow(c).width(), 0);
        // Narrowing by WIDE is the identity.
        assert_eq!(a.narrow(Bounds::WIDE), a);
    }

    #[test]
    fn access_containment() {
        let b = Bounds::new(1000, 1016);
        assert!(b.contains_access(Ptr(1000), 16));
        assert!(b.contains_access(Ptr(1012), 4));
        assert!(!b.contains_access(Ptr(1012), 8)); // straddles the end
        assert!(!b.contains_access(Ptr(996), 8)); // straddles the start
        assert!(!b.contains_access(Ptr(1016), 1)); // one past the end
        assert!(b.contains_ptr(Ptr(1015)));
        assert!(!b.contains_ptr(Ptr(1016)));
    }

    #[test]
    fn from_base_size_saturates() {
        let b = Bounds::from_base_size(Ptr(u64::MAX - 4), 16);
        assert_eq!(b.hi, u64::MAX);
    }
}
