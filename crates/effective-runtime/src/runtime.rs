//! The EffectiveSan runtime system (paper §5, Figure 6).
//!
//! The runtime binds a *dynamic type* to every allocated object by storing a
//! `META` header (allocation type + allocation size) at the object's base,
//! where the low-fat `base()` operation can find it from any interior
//! pointer.  The instrumented program then calls:
//!
//! * [`TypeCheckRuntime::type_check`] — verify a pointer against the static
//!   type declared by the programmer and return the matching sub-object's
//!   bounds (Fig. 6 lines 9–24);
//! * [`TypeCheckRuntime::bounds_check`] — verify a (derived) pointer access
//!   stays inside previously computed bounds (Fig. 3(g));
//! * [`TypeCheckRuntime::bounds_narrow`] — narrow bounds to a field
//!   sub-object (Fig. 3(e));
//! * [`TypeCheckRuntime::type_malloc`] / [`TypeCheckRuntime::type_free`] —
//!   the typed allocation wrappers (Fig. 6 lines 1–7), including binding
//!   deallocated objects to the special `FREE` type;
//! * [`TypeCheckRuntime::bounds_get`] — the reduced-instrumentation entry
//!   point used by the EffectiveSan-bounds variant (§6.2);
//! * [`TypeCheckRuntime::cast_check`] — the cast-site check used by the
//!   EffectiveSan-type variant (§6.2).

use std::collections::HashMap;
use std::sync::Arc;

use effective_types::{LayoutTable, MatchKind, Type, TypeLayout, TypeRegistry};
use lowfat::{AllocKind, AllocatorConfig, LowFatAllocator, Memory, Ptr};
use serde::{Deserialize, Serialize};

use crate::bounds::Bounds;
use crate::errors::{ErrorKind, ErrorRecord, ErrorReporter, ReporterConfig};

/// Size of the `META` header stored at the base of every typed allocation
/// (one word for the type, one word for the allocation size) — the paper
/// assumes `sizeof(META) = 16` in Example 5.
pub const META_SIZE: u64 = 16;

/// Runtime configuration.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Error reporting configuration.
    pub reporter: ReporterConfig,
    /// Low-fat allocator configuration (quarantine, …).
    pub allocator: AllocatorConfig,
}

/// Counters for every kind of instrumentation call, reported per benchmark
/// in Figure 7 (`#Type`, `#Bound`) and used for the §6.2 tool comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Number of `type_check` calls.
    pub type_checks: u64,
    /// `type_check` calls that saw a legacy (non-low-fat or untyped)
    /// pointer and returned wide bounds.
    pub legacy_type_checks: u64,
    /// `type_check` calls that failed (type error reported).
    pub failed_type_checks: u64,
    /// Number of `bounds_check` calls.
    pub bounds_checks: u64,
    /// `bounds_check` calls that failed.
    pub failed_bounds_checks: u64,
    /// Number of `bounds_narrow` operations.
    pub bounds_narrows: u64,
    /// Number of `bounds_get` calls (EffectiveSan-bounds variant).
    pub bounds_gets: u64,
    /// Number of `cast_check` calls (EffectiveSan-type variant).
    pub cast_checks: u64,
    /// Typed allocations performed.
    pub typed_allocations: u64,
    /// Typed frees performed.
    pub typed_frees: u64,
}

impl CheckStats {
    /// Total number of checks of any kind (used for overhead modelling).
    pub fn total_checks(&self) -> u64 {
        self.type_checks + self.bounds_checks + self.bounds_gets + self.cast_checks
    }
}

/// The EffectiveSan runtime: typed allocation, dynamic type checks, bounds
/// checks and error reporting over a simulated low-fat address space.
#[derive(Debug)]
pub struct TypeCheckRuntime {
    registry: Arc<TypeRegistry>,
    layout_cache: LayoutTable,
    type_ids: HashMap<Type, u32>,
    types_by_id: Vec<(Type, Option<Arc<TypeLayout>>)>,
    /// The simulated low-fat allocator.
    pub allocator: LowFatAllocator,
    /// The simulated memory backing the address space.
    pub memory: Memory,
    reporter: ErrorReporter,
    stats: CheckStats,
    free_type_id: u32,
}

impl TypeCheckRuntime {
    /// Create a runtime over the given type registry.
    pub fn new(registry: Arc<TypeRegistry>, config: RuntimeConfig) -> Self {
        let mut rt = TypeCheckRuntime {
            registry,
            layout_cache: LayoutTable::new(),
            type_ids: HashMap::new(),
            // Id 0 is reserved for "no type bound" (untyped / foreign
            // allocations read back zeroed META words).
            types_by_id: vec![(Type::void(), None)],
            allocator: LowFatAllocator::new(config.allocator),
            memory: Memory::new(),
            reporter: ErrorReporter::new(config.reporter),
            stats: CheckStats::default(),
            free_type_id: 0,
        };
        rt.free_type_id = rt.register_type(&Type::Free);
        rt
    }

    /// The type registry the runtime was built over.
    pub fn registry(&self) -> &Arc<TypeRegistry> {
        &self.registry
    }

    /// Instrumentation-call statistics.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// The error reporter (read access).
    pub fn reporter(&self) -> &ErrorReporter {
        &self.reporter
    }

    /// Mutable access to the error reporter (used by tests and by baseline
    /// sanitizers sharing the reporting infrastructure).
    pub fn reporter_mut(&mut self) -> &mut ErrorReporter {
        &mut self.reporter
    }

    /// Should execution stop (abort-after-N errors reached)?
    pub fn halted(&self) -> bool {
        self.reporter.halted()
    }

    /// Total number of layout-hash-table entries materialised so far
    /// (type meta data footprint).
    pub fn layout_table_entries(&self) -> usize {
        self.layout_cache.total_entries()
    }

    /// Intern a type, building (and caching) its layout table.
    ///
    /// Returns a dense id used in `META` headers.  Unknown/record types that
    /// cannot be laid out (e.g. undefined tags) are registered without a
    /// layout and behave like legacy allocations.
    pub fn register_type(&mut self, ty: &Type) -> u32 {
        let key = ty.strip_array().clone();
        if let Some(&id) = self.type_ids.get(&key) {
            return id;
        }
        let layout = TypeLayout::build(&self.registry, &key).ok().map(Arc::new);
        if layout.is_none() && !key.is_free() {
            // Fall back to the shared layout cache only for layoutable
            // types; others keep `None`.
        }
        let id = self.types_by_id.len() as u32;
        self.types_by_id.push((key.clone(), layout));
        self.type_ids.insert(key, id);
        id
    }

    /// The dynamic (allocation) type currently bound to the object that
    /// `ptr` points (into), if any.
    pub fn dynamic_type_of(&self, ptr: Ptr) -> Option<&Type> {
        let base = self.allocator.base(ptr)?;
        let id = self.memory.read_u64(base) as u32;
        self.types_by_id
            .get(id as usize)
            .map(|(t, _)| t)
            .filter(|_| id != 0)
    }

    /// The allocation bounds (excluding the META header) of the object that
    /// `ptr` points into, if it is a typed low-fat allocation.
    pub fn allocation_bounds(&self, ptr: Ptr) -> Option<Bounds> {
        let base = self.allocator.base(ptr)?;
        let id = self.memory.read_u64(base) as u32;
        if id == 0 || id as usize >= self.types_by_id.len() {
            return None;
        }
        let size = self.memory.read_u64(base.add(8));
        Some(Bounds::from_base_size(base.add(META_SIZE), size))
    }

    // ------------------------------------------------------------------
    // Typed allocation (Fig. 6 lines 1-7)
    // ------------------------------------------------------------------

    /// `type_malloc(size, T)`: allocate `size` bytes bound to dynamic type
    /// `T[size / sizeof(T)]`.  Also used for typed stack and global
    /// allocations by passing the appropriate [`AllocKind`].
    pub fn type_malloc(&mut self, size: u64, elem: &Type, kind: AllocKind) -> Ptr {
        self.stats.typed_allocations += 1;
        if kind == AllocKind::Legacy {
            // Custom memory allocators / uninstrumented code: no META, the
            // resulting pointer is legacy.
            return self.allocator.alloc(size.max(1), AllocKind::Legacy);
        }
        let id = self.register_type(elem);
        let base = self.allocator.alloc(META_SIZE + size.max(1), kind);
        if !self.allocator.is_low_fat(base) {
            // Oversized allocation fell back to the legacy region; it cannot
            // carry meta data retrievable via base().
            return base;
        }
        self.memory.write_u64(base, id as u64);
        self.memory.write_u64(base.add(8), size);
        base.add(META_SIZE)
    }

    /// `type_free(ptr)`: bind the object to the `FREE` type and release the
    /// memory.  Detects double frees.  Returns `true` when the free was
    /// accepted.
    pub fn type_free(&mut self, ptr: Ptr, location: &Arc<str>) -> bool {
        self.stats.typed_frees += 1;
        if ptr.is_null() {
            return true; // free(NULL) is a no-op
        }
        let Some(base) = self.allocator.base(ptr) else {
            // Legacy pointer: nothing to check, nothing to do.
            return true;
        };
        let id = self.memory.read_u64(base) as u32;
        let dyn_ty = self
            .types_by_id
            .get(id as usize)
            .map(|(t, _)| t.clone())
            .unwrap_or_else(Type::void);
        if id == self.free_type_id {
            self.report(
                ErrorKind::DoubleFree,
                &Type::void(),
                &Type::Free,
                0,
                None,
                location,
                "object freed twice".to_string(),
            );
            return false;
        }
        // Bind the FREE type.  The allocator preserves the META words until
        // the block is reallocated (the memory is simply not zeroed).
        let free_id = self.free_type_id;
        self.memory.write_u64(base, free_id as u64);
        if ptr != base.add(META_SIZE) {
            // Freeing an interior pointer is itself undefined behaviour;
            // report it as a type error against the dynamic type.
            let off = ptr.diff(base.add(META_SIZE)).unsigned_abs();
            self.report(
                ErrorKind::TypeConfusion,
                &Type::void(),
                &dyn_ty,
                off,
                None,
                location,
                "free() of an interior pointer".to_string(),
            );
        }
        let _ = self.allocator.free(base);
        true
    }

    /// `type_realloc(ptr, new_size, T)`: grow/shrink a typed allocation,
    /// copying the payload and freeing the old object.
    pub fn type_realloc(
        &mut self,
        ptr: Ptr,
        new_size: u64,
        elem: &Type,
        kind: AllocKind,
        location: &Arc<str>,
    ) -> Ptr {
        if ptr.is_null() {
            return self.type_malloc(new_size, elem, kind);
        }
        let old_bounds = self.allocation_bounds(ptr);
        let new = self.type_malloc(new_size, elem, kind);
        if let Some(old) = old_bounds {
            let copy = old.width().min(new_size);
            self.memory.copy(new, Ptr(old.lo), copy);
        }
        self.type_free(ptr, location);
        new
    }

    // ------------------------------------------------------------------
    // Dynamic type checking (Fig. 6 lines 9-24)
    // ------------------------------------------------------------------

    /// The `type_check(ptr, T[])` function: verify that `ptr` points to (a
    /// sub-object of) an object whose dynamic type is compatible with the
    /// static type `static_ty`, and return the sub-object bounds.
    ///
    /// Legacy pointers and failed checks return [`Bounds::WIDE`].
    pub fn type_check(&mut self, ptr: Ptr, static_ty: &Type, location: &Arc<str>) -> Bounds {
        self.stats.type_checks += 1;
        self.check_against_dynamic_type(ptr, static_ty, location, ErrorKind::TypeConfusion)
    }

    /// The cast-site variant of [`type_check`](Self::type_check) used by
    /// EffectiveSan-type: identical logic, but failures are classified as
    /// [`ErrorKind::BadCast`] and counted separately.
    pub fn cast_check(&mut self, ptr: Ptr, static_ty: &Type, location: &Arc<str>) -> Bounds {
        self.stats.cast_checks += 1;
        self.check_against_dynamic_type(ptr, static_ty, location, ErrorKind::BadCast)
    }

    /// The `bounds_get(ptr)` function used by the EffectiveSan-bounds
    /// variant: return the *allocation* bounds derived from the object's
    /// dynamic type / allocation size, without verifying the static type.
    pub fn bounds_get(&mut self, ptr: Ptr) -> Bounds {
        self.stats.bounds_gets += 1;
        match self.allocation_bounds(ptr) {
            Some(b) => b,
            None => Bounds::WIDE,
        }
    }

    /// The `bounds_narrow` operation (Fig. 3(e)): intersect bounds with a
    /// field's address range.
    pub fn bounds_narrow(&mut self, bounds: Bounds, field: Bounds) -> Bounds {
        self.stats.bounds_narrows += 1;
        bounds.narrow(field)
    }

    /// The `bounds_check(ptr, b)` function (Fig. 3(g)): verify an access of
    /// `access_size` bytes at `ptr` lies inside `bounds`.
    ///
    /// `escape` marks checks guarding pointer escapes (stores of pointers,
    /// arguments) rather than dereferences; failures are then classified as
    /// [`ErrorKind::EscapeBoundsOverflow`].
    ///
    /// Returns `true` when the access is in bounds.
    pub fn bounds_check(
        &mut self,
        ptr: Ptr,
        access_size: u64,
        bounds: Bounds,
        location: &Arc<str>,
        escape: bool,
    ) -> bool {
        self.stats.bounds_checks += 1;
        if bounds.contains_access(ptr, access_size) {
            return true;
        }
        self.stats.failed_bounds_checks += 1;
        let (kind, dyn_ty, offset) = self.classify_bounds_failure(ptr, escape);
        self.report(
            kind,
            &Type::void(),
            &dyn_ty,
            offset,
            Some(bounds),
            location,
            format!(
                "access of {access_size} byte(s) at {ptr} outside bounds {:#x}..{:#x}",
                bounds.lo, bounds.hi
            ),
        );
        false
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_against_dynamic_type(
        &mut self,
        ptr: Ptr,
        static_ty: &Type,
        location: &Arc<str>,
        failure_kind: ErrorKind,
    ) -> Bounds {
        // Legacy pointers (null, uninstrumented allocations, oversized
        // objects): wide bounds, no check possible.
        let Some(base) = self.allocator.base(ptr) else {
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        };
        let id = self.memory.read_u64(base) as u32;
        let Some((alloc_ty, layout)) = self.types_by_id.get(id as usize).cloned() else {
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        };
        if id == 0 {
            // Low-fat but never typed (foreign allocation): treat as legacy.
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        }

        let alloc_size = self.memory.read_u64(base.add(8));
        let obj_base = base.add(META_SIZE);
        let alloc_bounds = Bounds::from_base_size(obj_base, alloc_size);

        // Use-after-free: the dynamic type is FREE.
        if id == self.free_type_id {
            self.stats.failed_type_checks += 1;
            self.report(
                ErrorKind::UseAfterFree,
                static_ty,
                &Type::Free,
                ptr.diff(obj_base).unsigned_abs(),
                Some(alloc_bounds),
                location,
                "pointer to deallocated object".to_string(),
            );
            return Bounds::WIDE;
        }

        // Pointer into the META header itself (an underflow past the object
        // base): no sub-object can match.
        let delta = ptr.diff(obj_base);
        if delta < 0 {
            self.stats.failed_type_checks += 1;
            self.report(
                failure_kind,
                static_ty,
                &alloc_ty,
                delta.unsigned_abs(),
                Some(alloc_bounds),
                location,
                "pointer underflows the allocation base".to_string(),
            );
            return Bounds::WIDE;
        }
        let k = delta as u64;

        let Some(layout) = layout else {
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        };

        match layout.lookup(static_ty, k) {
            Some(m) => {
                let sub = match m.kind {
                    MatchKind::ContainingArray | MatchKind::ByteAccess => alloc_bounds,
                    _ if m.bounds.is_unbounded() => alloc_bounds,
                    _ => Bounds::new(
                        ptr.addr().wrapping_add(m.bounds.lo as u64),
                        ptr.addr().wrapping_add(m.bounds.hi as u64),
                    ),
                };
                // Fig. 6 line 20: narrow to the allocation bounds (the
                // layout table is built for the incomplete type T[]).
                sub.narrow(alloc_bounds)
            }
            None => {
                self.stats.failed_type_checks += 1;
                let detail =
                    format!("no sub-object of type `{static_ty}` at offset {k} of `{alloc_ty}`");
                self.report(
                    failure_kind,
                    static_ty,
                    &alloc_ty,
                    layout.normalize_offset(k),
                    Some(alloc_bounds),
                    location,
                    detail,
                );
                Bounds::WIDE
            }
        }
    }

    fn classify_bounds_failure(&self, ptr: Ptr, escape: bool) -> (ErrorKind, Type, u64) {
        if escape {
            let dyn_ty = self
                .dynamic_type_of(ptr)
                .cloned()
                .unwrap_or_else(Type::void);
            return (ErrorKind::EscapeBoundsOverflow, dyn_ty, 0);
        }
        match self.allocation_bounds(ptr) {
            Some(alloc) if alloc.contains_ptr(ptr) => {
                // Inside the allocation but outside the (narrowed) bounds:
                // a sub-object overflow.
                let dyn_ty = self
                    .dynamic_type_of(ptr)
                    .cloned()
                    .unwrap_or_else(Type::void);
                (
                    ErrorKind::SubObjectBoundsOverflow,
                    dyn_ty,
                    ptr.addr() - alloc.lo,
                )
            }
            _ => {
                let dyn_ty = self
                    .dynamic_type_of(ptr)
                    .cloned()
                    .unwrap_or_else(Type::void);
                (ErrorKind::ObjectBoundsOverflow, dyn_ty, 0)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        kind: ErrorKind,
        static_ty: &Type,
        dynamic_ty: &Type,
        offset: u64,
        bounds: Option<Bounds>,
        location: &Arc<str>,
        detail: String,
    ) {
        self.reporter.report(ErrorRecord {
            kind,
            static_type: static_ty.to_string(),
            dynamic_type: dynamic_ty.to_string(),
            offset,
            bounds,
            location: location.clone(),
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effective_types::{FieldDef, RecordDef};

    fn loc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    /// Registry with the paper's running example plus the `account` struct
    /// from the introduction.
    fn registry() -> Arc<TypeRegistry> {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::char_ptr()),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S")),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "account",
            vec![
                FieldDef::new("number", Type::array(Type::int(), 8)),
                FieldDef::new("balance", Type::float()),
            ],
        ))
        .unwrap();
        Arc::new(reg)
    }

    fn runtime() -> TypeCheckRuntime {
        TypeCheckRuntime::new(registry(), RuntimeConfig::default())
    }

    #[test]
    fn paper_intro_type_check_example() {
        // int *p = new int[100];
        // type_check(p, int[]) passes; type_check(p, float[]) fails.
        let mut rt = runtime();
        let p = rt.type_malloc(100 * 4, &Type::int(), AllocKind::Heap);
        let b1 = rt.type_check(p, &Type::int(), &loc("intro"));
        assert_eq!(b1, Bounds::from_base_size(p, 400));
        let b2 = rt.type_check(p, &Type::float(), &loc("intro"));
        assert!(b2.is_wide());
        assert_eq!(rt.stats().failed_type_checks, 1);
        assert_eq!(rt.reporter().stats().type_issues(), 1);
    }

    #[test]
    fn example5_interior_pointer_subobject_bounds() {
        // Example 5: p points to a T object; q = p + offsetof(t)+8 (the
        // a[2] position); type_check(q, int[]) returns the bounds of the
        // int[3] sub-object; type_check(q, double[]) fails.
        let mut rt = runtime();
        let size_t = rt.registry().size_of(&Type::struct_("T")).unwrap();
        let p = rt.type_malloc(size_t, &Type::struct_("T"), AllocKind::Heap);
        let toff = rt.registry().offset_of("T", "t").unwrap();
        let q = p.add(toff + 8);
        let b = rt.type_check(q, &Type::int(), &loc("ex5"));
        assert_eq!(b, Bounds::new(p.addr() + toff, p.addr() + toff + 12));
        let b2 = rt.type_check(q, &Type::double(), &loc("ex5"));
        assert!(b2.is_wide());
        assert_eq!(rt.stats().type_checks, 2);
        assert_eq!(rt.stats().failed_type_checks, 1);
    }

    #[test]
    fn subobject_overflow_into_sibling_field_is_detected() {
        // The introduction's motivating example: overflowing
        // account.number must not silently modify account.balance.
        let mut rt = runtime();
        let size = rt.registry().size_of(&Type::struct_("account")).unwrap();
        let p = rt.type_malloc(size, &Type::struct_("account"), AllocKind::Heap);
        // A pointer to number[0] with static type int[]:
        let b = rt.type_check(p, &Type::int(), &loc("account"));
        assert_eq!(b.width(), 32); // int[8], not the whole struct
                                   // number[8] === balance: inside the allocation, outside the
                                   // sub-object bounds.
        let overflow = p.add(32);
        assert!(!rt.bounds_check(overflow, 4, b, &loc("account"), false));
        let stats = rt.reporter().stats();
        assert_eq!(stats.issues_of(ErrorKind::SubObjectBoundsOverflow), 1);
        assert_eq!(stats.issues_of(ErrorKind::ObjectBoundsOverflow), 0);
    }

    #[test]
    fn object_overflow_is_classified_differently() {
        let mut rt = runtime();
        let p = rt.type_malloc(4 * 4, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("arr"));
        // Element 100 is far outside the 4-element allocation.
        let wild = p.add(400);
        assert!(!rt.bounds_check(wild, 4, b, &loc("arr"), false));
        assert_eq!(
            rt.reporter()
                .stats()
                .issues_of(ErrorKind::ObjectBoundsOverflow),
            1
        );
    }

    #[test]
    fn use_after_free_and_double_free() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert!(rt.type_free(p, &loc("free1")));
        // Use after free: the dynamic type is now FREE.
        let b = rt.type_check(p, &Type::struct_("S"), &loc("uaf"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
        // Double free.
        assert!(!rt.type_free(p, &loc("free2")));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::DoubleFree), 1);
    }

    #[test]
    fn reuse_after_free_with_different_type_is_detected() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        // The allocator reuses the block for a float array.
        let q = rt.type_malloc(24, &Type::float(), AllocKind::Heap);
        assert_eq!(
            p, q,
            "block should be reused for this test to be meaningful"
        );
        // The dangling pointer is now typed float[], not S: error.
        let b = rt.type_check(p, &Type::struct_("S"), &loc("reuse"));
        assert!(b.is_wide());
        assert!(rt.reporter().stats().type_issues() >= 1);
        // Whereas the new owner's accesses are fine.
        let ok = rt.type_check(q, &Type::float(), &loc("owner"));
        assert!(!ok.is_wide());
    }

    #[test]
    fn reuse_after_free_with_same_type_is_missed() {
        // Documented limitation (§2.2/§3): reuse with the *same* type is not
        // detectable by type checking alone.
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        let q = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert_eq!(p, q);
        let b = rt.type_check(p, &Type::struct_("S"), &loc("reuse-same"));
        assert!(!b.is_wide());
        assert_eq!(rt.reporter().stats().temporal_issues(), 0);
    }

    #[test]
    fn quarantine_prevents_same_type_reuse() {
        let mut rt = TypeCheckRuntime::new(
            registry(),
            RuntimeConfig {
                allocator: AllocatorConfig {
                    quarantine_blocks: 4,
                },
                ..Default::default()
            },
        );
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        let q = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert_ne!(p, q, "quarantine must delay reuse");
        // The dangling pointer still sees FREE: use-after-free detected.
        rt.type_check(p, &Type::struct_("S"), &loc("uaf"));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
    }

    #[test]
    fn legacy_pointers_get_wide_bounds() {
        let mut rt = runtime();
        let p = rt.type_malloc(100, &Type::int(), AllocKind::Legacy);
        let b = rt.type_check(p, &Type::float(), &loc("legacy"));
        assert!(b.is_wide());
        assert_eq!(rt.stats().legacy_type_checks, 1);
        assert_eq!(rt.stats().failed_type_checks, 0);
        assert!(rt.bounds_check(p.add(1000), 8, b, &loc("legacy"), false));
        // Null pointers are legacy too.
        let b = rt.type_check(Ptr::NULL, &Type::int(), &loc("null"));
        assert!(b.is_wide());
    }

    #[test]
    fn char_access_resets_bounds_to_containing_object() {
        // §6.1 (xalancbmk): a cast to char* resets the bounds to the
        // containing object rather than reporting a sub-object overflow.
        let mut rt = runtime();
        let size = rt.registry().size_of(&Type::struct_("T")).unwrap();
        let p = rt.type_malloc(size, &Type::struct_("T"), AllocKind::Heap);
        let b = rt.type_check(p.add(5), &Type::char_(), &loc("memcpyish"));
        assert_eq!(b, Bounds::from_base_size(p, size));
        assert_eq!(rt.stats().failed_type_checks, 0);
    }

    #[test]
    fn bounds_get_ignores_types() {
        let mut rt = runtime();
        let p = rt.type_malloc(64, &Type::struct_("S"), AllocKind::Heap);
        let b = rt.bounds_get(p.add(8));
        assert_eq!(b, Bounds::from_base_size(p, 64));
        assert_eq!(rt.stats().bounds_gets, 1);
        assert_eq!(rt.stats().failed_type_checks, 0);
        // Legacy pointer: wide.
        let q = rt.type_malloc(64, &Type::int(), AllocKind::Legacy);
        assert!(rt.bounds_get(q).is_wide());
    }

    #[test]
    fn cast_check_reports_bad_cast() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        let b = rt.cast_check(p, &Type::struct_("account"), &loc("cast"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::BadCast), 1);
        assert_eq!(rt.stats().cast_checks, 1);
    }

    #[test]
    fn realloc_copies_and_frees() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        rt.memory.write_u32(p, 0x11223344);
        rt.memory.write_u32(p.add(12), 0x55667788);
        let q = rt.type_realloc(p, 64, &Type::int(), AllocKind::Heap, &loc("realloc"));
        assert_ne!(p, q);
        assert_eq!(rt.memory.read_u32(q), 0x11223344);
        assert_eq!(rt.memory.read_u32(q.add(12)), 0x55667788);
        // The old object is now FREE.
        rt.type_check(p, &Type::int(), &loc("stale"));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
    }

    #[test]
    fn pointer_underflow_into_meta_header_is_an_error() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        let before = p.offset(-4);
        let b = rt.type_check(before, &Type::int(), &loc("underflow"));
        assert!(b.is_wide());
        assert_eq!(rt.stats().failed_type_checks, 1);
    }

    #[test]
    fn escape_bounds_failures_are_classified() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("esc"));
        assert!(!rt.bounds_check(p.add(64), 8, b, &loc("esc"), true));
        assert_eq!(
            rt.reporter()
                .stats()
                .issues_of(ErrorKind::EscapeBoundsOverflow),
            1
        );
    }

    #[test]
    fn stats_count_all_check_kinds() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("s"));
        rt.bounds_check(p, 4, b, &loc("s"), false);
        rt.bounds_narrow(b, Bounds::new(b.lo, b.lo + 4));
        rt.bounds_get(p);
        rt.cast_check(p, &Type::int(), &loc("s"));
        let stats = rt.stats();
        assert_eq!(stats.type_checks, 1);
        assert_eq!(stats.bounds_checks, 1);
        assert_eq!(stats.bounds_narrows, 1);
        assert_eq!(stats.bounds_gets, 1);
        assert_eq!(stats.cast_checks, 1);
        assert_eq!(stats.typed_allocations, 1);
        assert_eq!(stats.total_checks(), 4);
    }

    #[test]
    fn free_of_interior_pointer_is_reported() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p.add(4), &loc("interior-free"));
        assert!(rt.reporter().stats().type_issues() >= 1);
    }

    #[test]
    fn stack_and_global_allocations_are_typed() {
        let mut rt = runtime();
        let frame = rt.allocator.stack_frame_begin();
        let s = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Stack);
        let g = rt.type_malloc(8 * 24, &Type::struct_("S"), AllocKind::Global);
        assert!(!rt
            .type_check(s, &Type::struct_("S"), &loc("stack"))
            .is_wide());
        assert!(!rt
            .type_check(g.add(24), &Type::struct_("S"), &loc("global"))
            .is_wide());
        assert_eq!(rt.stats().failed_type_checks, 0);
        rt.allocator.stack_frame_end(frame);
    }
}
