//! The EffectiveSan runtime system (paper §5, Figure 6).
//!
//! The runtime binds a *dynamic type* to every allocated object by storing a
//! `META` header (allocation type + allocation size) at the object's base,
//! where the low-fat `base()` operation can find it from any interior
//! pointer.  The instrumented program then calls:
//!
//! * [`TypeCheckRuntime::type_check`] — verify a pointer against the static
//!   type declared by the programmer and return the matching sub-object's
//!   bounds (Fig. 6 lines 9–24);
//! * [`TypeCheckRuntime::bounds_check`] — verify a (derived) pointer access
//!   stays inside previously computed bounds (Fig. 3(g));
//! * [`TypeCheckRuntime::bounds_narrow`] — narrow bounds to a field
//!   sub-object (Fig. 3(e));
//! * [`TypeCheckRuntime::type_malloc`] / [`TypeCheckRuntime::type_free`] —
//!   the typed allocation wrappers (Fig. 6 lines 1–7), including binding
//!   deallocated objects to the special `FREE` type;
//! * [`TypeCheckRuntime::bounds_get`] — the reduced-instrumentation entry
//!   point used by the EffectiveSan-bounds variant (§6.2);
//! * [`TypeCheckRuntime::cast_check`] — the cast-site check used by the
//!   EffectiveSan-type variant (§6.2).

use std::sync::Arc;

use effective_types::{
    LayoutMatch, MatchKind, RelBounds, Type, TypeId, TypeInterner, TypeLayout, TypeRegistry,
};
use lowfat::{AllocKind, AllocatorConfig, LowFatAllocator, Memory, Ptr};
use serde::{Deserialize, Serialize};

use crate::bounds::Bounds;
use crate::errors::{ErrorKind, ErrorRecord, ErrorReporter, ReporterConfig};

/// Size of the `META` header stored at the base of every typed allocation
/// (one word for the type, one word for the allocation size) — the paper
/// assumes `sizeof(META) = 16` in Example 5.
pub const META_SIZE: u64 = 16;

/// Runtime configuration.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Error reporting configuration.
    pub reporter: ReporterConfig,
    /// Low-fat allocator configuration (quarantine, …).
    pub allocator: AllocatorConfig,
}

/// Counters for every kind of instrumentation call, reported per benchmark
/// in Figure 7 (`#Type`, `#Bound`) and used for the §6.2 tool comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Number of `type_check` calls.
    pub type_checks: u64,
    /// `type_check` calls that saw a legacy (non-low-fat or untyped)
    /// pointer and returned wide bounds.
    pub legacy_type_checks: u64,
    /// `type_check` calls that failed (type error reported).
    pub failed_type_checks: u64,
    /// Number of `bounds_check` calls.
    pub bounds_checks: u64,
    /// `bounds_check` calls that failed.
    pub failed_bounds_checks: u64,
    /// Number of `bounds_narrow` operations.
    pub bounds_narrows: u64,
    /// Number of `bounds_get` calls (EffectiveSan-bounds variant).
    pub bounds_gets: u64,
    /// Number of `cast_check` calls (EffectiveSan-type variant).
    pub cast_checks: u64,
    /// Typed allocations performed.
    pub typed_allocations: u64,
    /// Typed frees performed.
    pub typed_frees: u64,
    /// `type_check`/`cast_check` calls satisfied by the per-site check
    /// cache (no layout-table walk).
    pub check_cache_hits: u64,
    /// `type_check`/`cast_check` calls that walked the layout table (and,
    /// on success, populated the cache).
    pub check_cache_misses: u64,
}

impl CheckStats {
    /// Total number of checks of any kind (used for overhead modelling).
    pub fn total_checks(&self) -> u64 {
        self.type_checks + self.bounds_checks + self.bounds_gets + self.cast_checks
    }
}

/// Number of slots in the direct-mapped per-site check cache.  Power of
/// two; large enough that the working set of (allocation type, static
/// type, offset) triples of a typical inner loop never conflicts.
const CHECK_CACHE_SLOTS: usize = 1024;

/// One slot of the per-site check cache: a memoised *successful*
/// `(allocation TypeId, static TypeId, normalised offset) → LayoutMatch`
/// layout-table result.
///
/// Failed lookups are deliberately never cached: every failing check must
/// reach the reporter (the abort-after-N and total-event counters are
/// per-occurrence), so only the all-clear fast path is memoised.
///
/// # Invalidation
///
/// Entries never go stale because the allocation `TypeId` in the key is
/// read from the object's `META` header *on every check*: freeing an
/// object rebinds it to `FREE` (checked before the cache is consulted),
/// and reallocation/quarantine reuse writes a fresh type id, so a cached
/// entry for the old binding can no longer be keyed.  Ids are never
/// reused by the interner, and the mapping id → layout is immutable, so a
/// matching key always denotes a valid memoisation.
#[derive(Clone, Copy)]
struct CheckCacheSlot {
    alloc_id: u32,
    static_id: u32,
    offset: u64,
    result: LayoutMatch,
    valid: bool,
}

impl CheckCacheSlot {
    const EMPTY: CheckCacheSlot = CheckCacheSlot {
        alloc_id: 0,
        static_id: 0,
        offset: 0,
        result: LayoutMatch {
            bounds: RelBounds::UNBOUNDED,
            kind: MatchKind::Free,
        },
        valid: false,
    };
}

/// The direct-mapped check cache (see [`CheckCacheSlot`]).
struct CheckCache {
    slots: Box<[CheckCacheSlot]>,
}

impl CheckCache {
    fn new() -> Self {
        CheckCache {
            slots: vec![CheckCacheSlot::EMPTY; CHECK_CACHE_SLOTS].into_boxed_slice(),
        }
    }

    fn index(alloc_id: TypeId, static_id: TypeId, offset: u64) -> usize {
        let key = (alloc_id.raw() as u64) << 32 | static_id.raw() as u64;
        let h = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(offset.wrapping_mul(0xA24B_AED4_963E_E407));
        (h >> 32) as usize & (CHECK_CACHE_SLOTS - 1)
    }

    fn get(&self, alloc_id: TypeId, static_id: TypeId, offset: u64) -> Option<LayoutMatch> {
        let slot = &self.slots[Self::index(alloc_id, static_id, offset)];
        if slot.valid
            && slot.alloc_id == alloc_id.raw()
            && slot.static_id == static_id.raw()
            && slot.offset == offset
        {
            Some(slot.result)
        } else {
            None
        }
    }

    fn insert(&mut self, alloc_id: TypeId, static_id: TypeId, offset: u64, result: LayoutMatch) {
        self.slots[Self::index(alloc_id, static_id, offset)] = CheckCacheSlot {
            alloc_id: alloc_id.raw(),
            static_id: static_id.raw(),
            offset,
            result,
            valid: true,
        };
    }

    fn clear(&mut self) {
        self.slots.fill(CheckCacheSlot::EMPTY);
    }
}

impl std::fmt::Debug for CheckCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let used = self.slots.iter().filter(|s| s.valid).count();
        write!(f, "CheckCache({used}/{CHECK_CACHE_SLOTS} slots)")
    }
}

/// A [`TypeId`]-indexed layout slot: distinguishes "never attempted" from
/// "attempted but unlayoutable" so failed builds are not retried per
/// allocation.
#[derive(Clone, Debug, Default)]
enum LayoutEntry {
    /// No build attempted yet (ids interned only as layout keys).
    #[default]
    Unbuilt,
    /// The type cannot be laid out (e.g. `void`, undefined record tags);
    /// allocations of it behave like legacy allocations.
    Unlayoutable,
    /// The built layout table.
    Built(Arc<TypeLayout>),
}

/// The EffectiveSan runtime: typed allocation, dynamic type checks, bounds
/// checks and error reporting over a simulated low-fat address space.
#[derive(Debug)]
pub struct TypeCheckRuntime {
    registry: Arc<TypeRegistry>,
    /// Dense type ids: `META` headers store [`TypeId::raw`] values, so the
    /// hot path maps header word → layout with one vector index.
    interner: TypeInterner,
    /// Layout tables indexed by [`TypeId`].
    layouts: Vec<LayoutEntry>,
    /// The per-site check cache (see [`CheckCacheSlot`]).
    check_cache: CheckCache,
    /// The simulated low-fat allocator.
    pub allocator: LowFatAllocator,
    /// The simulated memory backing the address space.
    pub memory: Memory,
    reporter: ErrorReporter,
    stats: CheckStats,
}

impl TypeCheckRuntime {
    /// Create a runtime over the given type registry.
    pub fn new(registry: Arc<TypeRegistry>, config: RuntimeConfig) -> Self {
        let mut rt = TypeCheckRuntime {
            registry,
            // The interner pre-seeds the well-known ids; id 0 (`void`)
            // doubles as "no type bound" — untyped / foreign allocations
            // read back zeroed META words.
            interner: TypeInterner::new(),
            layouts: Vec::new(),
            check_cache: CheckCache::new(),
            allocator: LowFatAllocator::new(config.allocator),
            memory: Memory::new(),
            reporter: ErrorReporter::new(config.reporter),
            stats: CheckStats::default(),
        };
        // Build FREE's (empty) layout eagerly: freed blocks' META words
        // carry `TypeId::FREE` and must always be trusted (matching the
        // old eager FREE registration).  The other well-known ids (void,
        // char, void*) stay interned-only until a program actually
        // allocates them — a garbage META word equal to one of them must
        // classify as legacy, exactly like any other never-registered id.
        rt.build_layout_for(TypeId::FREE);
        rt
    }

    /// The type registry the runtime was built over.
    pub fn registry(&self) -> &Arc<TypeRegistry> {
        &self.registry
    }

    /// Instrumentation-call statistics.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// The error reporter (read access).
    pub fn reporter(&self) -> &ErrorReporter {
        &self.reporter
    }

    /// Mutable access to the error reporter (used by tests and by baseline
    /// sanitizers sharing the reporting infrastructure).
    pub fn reporter_mut(&mut self) -> &mut ErrorReporter {
        &mut self.reporter
    }

    /// Should execution stop (abort-after-N errors reached)?
    pub fn halted(&self) -> bool {
        self.reporter.halted()
    }

    /// Drop every memoised per-site check-cache entry.
    ///
    /// Correctness never requires this — `free`/`realloc` invalidate by
    /// rebinding the `META` type id, which the cache key starts from — but
    /// tests use it to compare cached and uncached behaviour.
    pub fn invalidate_check_cache(&mut self) {
        self.check_cache.clear();
    }

    /// Total number of layout-hash-table entries materialised so far
    /// (type meta data footprint).
    pub fn layout_table_entries(&self) -> usize {
        self.layouts
            .iter()
            .map(|l| match l {
                LayoutEntry::Built(t) => t.entry_count(),
                _ => 0,
            })
            .sum()
    }

    /// The type interner backing `META` ids and layout-table keys.
    pub fn interner(&self) -> &TypeInterner {
        &self.interner
    }

    /// Intern a type, building (and caching) its layout table.
    ///
    /// Returns the dense id used in `META` headers.  Unknown/record types
    /// that cannot be laid out (e.g. undefined tags) are registered without
    /// a layout and behave like legacy allocations.
    pub fn register_type(&mut self, ty: &Type) -> TypeId {
        let id = self.interner.intern(ty);
        self.build_layout_for(id);
        id
    }

    /// Intern a check-site static type without building a layout table —
    /// the id form expected by [`type_check_id`](Self::type_check_id) and
    /// [`cast_check_id`](Self::cast_check_id).  Exactly what the lazy check
    /// path would do on first touch; idempotent after
    /// [`preload_types`](Self::preload_types).
    pub fn intern_type(&mut self, ty: &Type) -> TypeId {
        self.interner.intern(ty)
    }

    /// Resolve an interned id back to its type (for reporting and for
    /// tools that need the structural type).
    pub fn resolve_type(&self, id: TypeId) -> Option<&Type> {
        self.interner.resolve(id)
    }

    /// Pre-intern every type a program references, so the check hot path
    /// never pays a first-touch layout build and the `META` ids are
    /// assigned densely at load time.
    ///
    /// Only `alloc_types` (types that can label memory) get layout tables
    /// built; `check_types` (static types of check sites) are pure
    /// layout-table *keys* and are interned without building a table —
    /// exactly what the lazy path would do, so the metadata footprint
    /// ([`layout_table_entries`](Self::layout_table_entries)) is the same
    /// with or without preloading.
    pub fn preload_types(&mut self, alloc_types: &[Type], check_types: &[Type]) {
        for ty in alloc_types {
            self.register_type(ty);
        }
        for ty in check_types {
            self.interner.intern(ty);
        }
    }

    /// Build (once) the layout table behind `id`.  Types that cannot be
    /// laid out are marked [`LayoutEntry::Unlayoutable`] and behave like
    /// legacy allocations.
    fn build_layout_for(&mut self, id: TypeId) {
        if id.index() >= self.layouts.len() {
            self.layouts.resize(id.index() + 1, LayoutEntry::Unbuilt);
        }
        if !matches!(self.layouts[id.index()], LayoutEntry::Unbuilt) {
            return;
        }
        let Some(element) = self.interner.resolve(id).cloned() else {
            return;
        };
        let layout = match TypeLayout::build(&self.registry, &mut self.interner, &element) {
            Ok(t) => LayoutEntry::Built(Arc::new(t)),
            Err(_) => LayoutEntry::Unlayoutable,
        };
        // Building may have interned new key types; keep the vector dense.
        if self.interner.len() > self.layouts.len() {
            self.layouts
                .resize(self.interner.len(), LayoutEntry::Unbuilt);
        }
        self.layouts[id.index()] = layout;
    }

    /// Is `id` a type id that was actually registered as an allocation
    /// type (a [`LayoutEntry::Built`]/[`LayoutEntry::Unlayoutable`] slot)?
    ///
    /// Only such ids are trusted when read back from a `META` header.
    /// Ids that are merely interned (static key types absorbed during
    /// layout builds or checks) never label an allocation, and treating
    /// them as typed would make the garbage-META classification depend on
    /// how much has been interned so far.
    fn is_allocation_type_id(&self, id: TypeId) -> bool {
        id != TypeId::UNTYPED
            && matches!(
                self.layouts.get(id.index()),
                Some(LayoutEntry::Built(_) | LayoutEntry::Unlayoutable)
            )
    }

    /// The dynamic (allocation) type currently bound to the object that
    /// `ptr` points (into), if any.
    pub fn dynamic_type_of(&self, ptr: Ptr) -> Option<&Type> {
        let base = self.allocator.base(ptr)?;
        let id = TypeId::from_raw(self.memory.read_u64(base) as u32);
        if !self.is_allocation_type_id(id) {
            return None;
        }
        self.interner.resolve(id)
    }

    /// The allocation bounds (excluding the META header) of the object that
    /// `ptr` points into, if it is a typed low-fat allocation.
    pub fn allocation_bounds(&self, ptr: Ptr) -> Option<Bounds> {
        let base = self.allocator.base(ptr)?;
        let id = TypeId::from_raw(self.memory.read_u64(base) as u32);
        if !self.is_allocation_type_id(id) {
            return None;
        }
        let size = self.memory.read_u64(base.add(8));
        Some(Bounds::from_base_size(base.add(META_SIZE), size))
    }

    // ------------------------------------------------------------------
    // Typed allocation (Fig. 6 lines 1-7)
    // ------------------------------------------------------------------

    /// `type_malloc(size, T)`: allocate `size` bytes bound to dynamic type
    /// `T[size / sizeof(T)]`.  Also used for typed stack and global
    /// allocations by passing the appropriate [`AllocKind`].
    pub fn type_malloc(&mut self, size: u64, elem: &Type, kind: AllocKind) -> Ptr {
        self.stats.typed_allocations += 1;
        if kind == AllocKind::Legacy {
            // Custom memory allocators / uninstrumented code: no META, the
            // resulting pointer is legacy.
            return self.allocator.alloc(size.max(1), AllocKind::Legacy);
        }
        let id = self.register_type(elem);
        // Saturate: a huge requested size must fall through to the legacy
        // region (or a failing allocation), not overflow the META header
        // addition.
        let base = self
            .allocator
            .alloc(size.max(1).saturating_add(META_SIZE), kind);
        if !self.allocator.is_low_fat(base) {
            // Oversized allocation fell back to the legacy region; it cannot
            // carry meta data retrievable via base().
            return base;
        }
        self.memory.write_u64(base, id.raw() as u64);
        self.memory.write_u64(base.add(8), size);
        base.add(META_SIZE)
    }

    /// `type_free(ptr)`: bind the object to the `FREE` type and release the
    /// memory.  Detects double frees.  Returns `true` when the free was
    /// accepted.
    pub fn type_free(&mut self, ptr: Ptr, location: &Arc<str>) -> bool {
        self.stats.typed_frees += 1;
        if ptr.is_null() {
            return true; // free(NULL) is a no-op
        }
        let Some(base) = self.allocator.base(ptr) else {
            // Legacy pointer: nothing to check, nothing to do.
            return true;
        };
        let id = TypeId::from_raw(self.memory.read_u64(base) as u32);
        // Resolve the dynamic type for diagnostics under the same validity
        // rule as every other META reader: ids that were never registered
        // as allocation types (garbage, or interned-only key types) report
        // as `void` regardless of interning state.
        let dyn_ty = if self.is_allocation_type_id(id) {
            self.resolve_or_void(id)
        } else {
            Type::void()
        };
        if id == TypeId::FREE {
            self.report(
                ErrorKind::DoubleFree,
                &Type::void(),
                &Type::Free,
                0,
                None,
                location,
                "object freed twice".to_string(),
            );
            return false;
        }
        // Bind the FREE type.  The allocator preserves the META words until
        // the block is reallocated (the memory is simply not zeroed).
        // Rebinding the id is also what invalidates the per-site check
        // cache for this object: the cache key starts from the META id, so
        // stale entries for the old binding become unreachable.
        self.memory.write_u64(base, TypeId::FREE.raw() as u64);
        if ptr != base.add(META_SIZE) {
            // Freeing an interior pointer is itself undefined behaviour;
            // report it as a type error against the dynamic type.
            let off = ptr.diff(base.add(META_SIZE)).unsigned_abs();
            self.report(
                ErrorKind::TypeConfusion,
                &Type::void(),
                &dyn_ty,
                off,
                None,
                location,
                "free() of an interior pointer".to_string(),
            );
        }
        let _ = self.allocator.free(base);
        true
    }

    /// `type_realloc(ptr, new_size, T)`: grow/shrink a typed allocation,
    /// copying the payload and freeing the old object.
    pub fn type_realloc(
        &mut self,
        ptr: Ptr,
        new_size: u64,
        elem: &Type,
        kind: AllocKind,
        location: &Arc<str>,
    ) -> Ptr {
        if ptr.is_null() {
            return self.type_malloc(new_size, elem, kind);
        }
        let old_bounds = self.allocation_bounds(ptr);
        let new = self.type_malloc(new_size, elem, kind);
        if let Some(old) = old_bounds {
            let copy = old.width().min(new_size);
            self.memory.copy(new, Ptr(old.lo), copy);
        }
        self.type_free(ptr, location);
        new
    }

    // ------------------------------------------------------------------
    // Dynamic type checking (Fig. 6 lines 9-24)
    // ------------------------------------------------------------------

    /// The `type_check(ptr, T[])` function: verify that `ptr` points to (a
    /// sub-object of) an object whose dynamic type is compatible with the
    /// static type `static_ty`, and return the sub-object bounds.
    ///
    /// Legacy pointers and failed checks return [`Bounds::WIDE`].
    pub fn type_check(&mut self, ptr: Ptr, static_ty: &Type, location: &Arc<str>) -> Bounds {
        let id = self.interner.intern(static_ty);
        self.type_check_id(ptr, id, location)
    }

    /// The id-based entry point of [`type_check`](Self::type_check): the
    /// static type was interned once ahead of time (see
    /// [`intern_type`](Self::intern_type)), so the hot path performs no
    /// structural type hashing at all.
    pub fn type_check_id(&mut self, ptr: Ptr, static_id: TypeId, location: &Arc<str>) -> Bounds {
        self.stats.type_checks += 1;
        self.check_against_dynamic_type(ptr, static_id, location, ErrorKind::TypeConfusion)
    }

    /// The cast-site variant of [`type_check`](Self::type_check) used by
    /// EffectiveSan-type: identical logic, but failures are classified as
    /// [`ErrorKind::BadCast`] and counted separately.
    pub fn cast_check(&mut self, ptr: Ptr, static_ty: &Type, location: &Arc<str>) -> Bounds {
        let id = self.interner.intern(static_ty);
        self.cast_check_id(ptr, id, location)
    }

    /// The id-based entry point of [`cast_check`](Self::cast_check).
    pub fn cast_check_id(&mut self, ptr: Ptr, static_id: TypeId, location: &Arc<str>) -> Bounds {
        self.stats.cast_checks += 1;
        self.check_against_dynamic_type(ptr, static_id, location, ErrorKind::BadCast)
    }

    /// The `bounds_get(ptr)` function used by the EffectiveSan-bounds
    /// variant: return the *allocation* bounds derived from the object's
    /// dynamic type / allocation size, without verifying the static type.
    pub fn bounds_get(&mut self, ptr: Ptr) -> Bounds {
        self.stats.bounds_gets += 1;
        match self.allocation_bounds(ptr) {
            Some(b) => b,
            None => Bounds::WIDE,
        }
    }

    /// The `bounds_narrow` operation (Fig. 3(e)): intersect bounds with a
    /// field's address range.
    pub fn bounds_narrow(&mut self, bounds: Bounds, field: Bounds) -> Bounds {
        self.stats.bounds_narrows += 1;
        bounds.narrow(field)
    }

    /// The `bounds_check(ptr, b)` function (Fig. 3(g)): verify an access of
    /// `access_size` bytes at `ptr` lies inside `bounds`.
    ///
    /// `escape` marks checks guarding pointer escapes (stores of pointers,
    /// arguments) rather than dereferences; failures are then classified as
    /// [`ErrorKind::EscapeBoundsOverflow`].
    ///
    /// Returns `true` when the access is in bounds.
    pub fn bounds_check(
        &mut self,
        ptr: Ptr,
        access_size: u64,
        bounds: Bounds,
        location: &Arc<str>,
        escape: bool,
    ) -> bool {
        self.stats.bounds_checks += 1;
        if bounds.contains_access(ptr, access_size) {
            return true;
        }
        self.stats.failed_bounds_checks += 1;
        let (kind, dyn_ty, offset) = self.classify_bounds_failure(ptr, escape);
        self.report(
            kind,
            &Type::void(),
            &dyn_ty,
            offset,
            Some(bounds),
            location,
            format!(
                "access of {access_size} byte(s) at {ptr} outside bounds {:#x}..{:#x}",
                bounds.lo, bounds.hi
            ),
        );
        false
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_against_dynamic_type(
        &mut self,
        ptr: Ptr,
        static_id: TypeId,
        location: &Arc<str>,
        failure_kind: ErrorKind,
    ) -> Bounds {
        // Legacy pointers (null, uninstrumented allocations, oversized
        // objects): wide bounds, no check possible.
        let Some(base) = self.allocator.base(ptr) else {
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        };
        let id = TypeId::from_raw(self.memory.read_u64(base) as u32);
        // One layouts-vec probe yields both the META-validity verdict and
        // the layout table.  Validity is judged against the set of
        // *registered allocation* type ids (a Built/Unlayoutable slot, see
        // [`is_allocation_type_id`](Self::is_allocation_type_id)), not
        // merely interned ids — the interner also absorbs static key types
        // mid-run, so "interned" is time-dependent while "registered" is
        // fixed once the program's types are preloaded.
        let layout = match self.layouts.get(id.index()) {
            Some(LayoutEntry::Built(t)) if id != TypeId::UNTYPED => Some(t.clone()),
            Some(LayoutEntry::Unlayoutable) if id != TypeId::UNTYPED => None,
            _ => {
                // Low-fat but never typed (foreign allocation, zeroed
                // META) or garbage META: treat as legacy.
                self.stats.legacy_type_checks += 1;
                return Bounds::WIDE;
            }
        };

        let alloc_size = self.memory.read_u64(base.add(8));
        let obj_base = base.add(META_SIZE);
        let alloc_bounds = Bounds::from_base_size(obj_base, alloc_size);

        // Use-after-free: the dynamic type is FREE.  Checked before the
        // check cache is consulted, so a cached entry for a previous
        // binding of this block can never mask a use-after-free.
        if id == TypeId::FREE {
            self.stats.failed_type_checks += 1;
            let static_ty = self.resolve_or_void(static_id);
            self.report(
                ErrorKind::UseAfterFree,
                &static_ty,
                &Type::Free,
                ptr.diff(obj_base).unsigned_abs(),
                Some(alloc_bounds),
                location,
                "pointer to deallocated object".to_string(),
            );
            return Bounds::WIDE;
        }

        // Pointer into the META header itself (an underflow past the object
        // base): no sub-object can match.
        let delta = ptr.diff(obj_base);
        if delta < 0 {
            self.stats.failed_type_checks += 1;
            let alloc_ty = self.resolve_or_void(id);
            let static_ty = self.resolve_or_void(static_id);
            self.report(
                failure_kind,
                &static_ty,
                &alloc_ty,
                delta.unsigned_abs(),
                Some(alloc_bounds),
                location,
                "pointer underflows the allocation base".to_string(),
            );
            return Bounds::WIDE;
        }
        let k = delta as u64;

        let Some(layout) = layout else {
            // Registered but unlayoutable allocation type: behaves like a
            // legacy allocation.
            self.stats.legacy_type_checks += 1;
            return Bounds::WIDE;
        };

        // The O(1) hot path: normalise once, then probe the direct-mapped
        // per-site cache before walking the layout table — the static type
        // arrives pre-interned, so not even a single hash remains here.
        // Only successful matches are memoised — failures must reach the
        // reporter every time.
        let k_norm = layout.normalize_offset(k);
        if let Some(m) = self.check_cache.get(id, static_id, k_norm) {
            self.stats.check_cache_hits += 1;
            return Self::match_to_bounds(ptr, m, alloc_bounds);
        }
        self.stats.check_cache_misses += 1;

        match layout.lookup_id(&self.interner, static_id, k_norm) {
            Some(m) => {
                self.check_cache.insert(id, static_id, k_norm, m);
                Self::match_to_bounds(ptr, m, alloc_bounds)
            }
            None => {
                self.stats.failed_type_checks += 1;
                let alloc_ty = self.resolve_or_void(id);
                let static_ty = self.resolve_or_void(static_id);
                let detail =
                    format!("no sub-object of type `{static_ty}` at offset {k} of `{alloc_ty}`");
                self.report(
                    failure_kind,
                    &static_ty,
                    &alloc_ty,
                    k_norm,
                    Some(alloc_bounds),
                    location,
                    detail,
                );
                Bounds::WIDE
            }
        }
    }

    /// Convert a (possibly cached) [`LayoutMatch`] into absolute bounds,
    /// narrowed to the allocation (Fig. 6 line 20: the layout table is
    /// built for the incomplete type `T[]`).
    fn match_to_bounds(ptr: Ptr, m: LayoutMatch, alloc_bounds: Bounds) -> Bounds {
        let sub = match m.kind {
            MatchKind::ContainingArray | MatchKind::ByteAccess => alloc_bounds,
            _ if m.bounds.is_unbounded() => alloc_bounds,
            _ => Bounds::new(
                ptr.addr().wrapping_add(m.bounds.lo as u64),
                ptr.addr().wrapping_add(m.bounds.hi as u64),
            ),
        };
        sub.narrow(alloc_bounds)
    }

    fn resolve_or_void(&self, id: TypeId) -> Type {
        self.interner
            .resolve(id)
            .cloned()
            .unwrap_or_else(Type::void)
    }

    fn classify_bounds_failure(&self, ptr: Ptr, escape: bool) -> (ErrorKind, Type, u64) {
        if escape {
            let dyn_ty = self
                .dynamic_type_of(ptr)
                .cloned()
                .unwrap_or_else(Type::void);
            return (ErrorKind::EscapeBoundsOverflow, dyn_ty, 0);
        }
        match self.allocation_bounds(ptr) {
            Some(alloc) if alloc.contains_ptr(ptr) => {
                // Inside the allocation but outside the (narrowed) bounds:
                // a sub-object overflow.
                let dyn_ty = self
                    .dynamic_type_of(ptr)
                    .cloned()
                    .unwrap_or_else(Type::void);
                (
                    ErrorKind::SubObjectBoundsOverflow,
                    dyn_ty,
                    ptr.addr() - alloc.lo,
                )
            }
            _ => {
                let dyn_ty = self
                    .dynamic_type_of(ptr)
                    .cloned()
                    .unwrap_or_else(Type::void);
                (ErrorKind::ObjectBoundsOverflow, dyn_ty, 0)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        kind: ErrorKind,
        static_ty: &Type,
        dynamic_ty: &Type,
        offset: u64,
        bounds: Option<Bounds>,
        location: &Arc<str>,
        detail: String,
    ) {
        self.reporter.report(ErrorRecord {
            kind,
            static_type: static_ty.to_string(),
            dynamic_type: dynamic_ty.to_string(),
            offset,
            bounds,
            location: location.clone(),
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effective_types::{FieldDef, RecordDef};

    fn loc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    /// Registry with the paper's running example plus the `account` struct
    /// from the introduction.
    fn registry() -> Arc<TypeRegistry> {
        let mut reg = TypeRegistry::new();
        reg.define(RecordDef::struct_(
            "S",
            vec![
                FieldDef::new("a", Type::array(Type::int(), 3)),
                FieldDef::new("s", Type::char_ptr()),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "T",
            vec![
                FieldDef::new("f", Type::float()),
                FieldDef::new("t", Type::struct_("S")),
            ],
        ))
        .unwrap();
        reg.define(RecordDef::struct_(
            "account",
            vec![
                FieldDef::new("number", Type::array(Type::int(), 8)),
                FieldDef::new("balance", Type::float()),
            ],
        ))
        .unwrap();
        Arc::new(reg)
    }

    fn runtime() -> TypeCheckRuntime {
        TypeCheckRuntime::new(registry(), RuntimeConfig::default())
    }

    #[test]
    fn paper_intro_type_check_example() {
        // int *p = new int[100];
        // type_check(p, int[]) passes; type_check(p, float[]) fails.
        let mut rt = runtime();
        let p = rt.type_malloc(100 * 4, &Type::int(), AllocKind::Heap);
        let b1 = rt.type_check(p, &Type::int(), &loc("intro"));
        assert_eq!(b1, Bounds::from_base_size(p, 400));
        let b2 = rt.type_check(p, &Type::float(), &loc("intro"));
        assert!(b2.is_wide());
        assert_eq!(rt.stats().failed_type_checks, 1);
        assert_eq!(rt.reporter().stats().type_issues(), 1);
    }

    #[test]
    fn example5_interior_pointer_subobject_bounds() {
        // Example 5: p points to a T object; q = p + offsetof(t)+8 (the
        // a[2] position); type_check(q, int[]) returns the bounds of the
        // int[3] sub-object; type_check(q, double[]) fails.
        let mut rt = runtime();
        let size_t = rt.registry().size_of(&Type::struct_("T")).unwrap();
        let p = rt.type_malloc(size_t, &Type::struct_("T"), AllocKind::Heap);
        let toff = rt.registry().offset_of("T", "t").unwrap();
        let q = p.add(toff + 8);
        let b = rt.type_check(q, &Type::int(), &loc("ex5"));
        assert_eq!(b, Bounds::new(p.addr() + toff, p.addr() + toff + 12));
        let b2 = rt.type_check(q, &Type::double(), &loc("ex5"));
        assert!(b2.is_wide());
        assert_eq!(rt.stats().type_checks, 2);
        assert_eq!(rt.stats().failed_type_checks, 1);
    }

    #[test]
    fn subobject_overflow_into_sibling_field_is_detected() {
        // The introduction's motivating example: overflowing
        // account.number must not silently modify account.balance.
        let mut rt = runtime();
        let size = rt.registry().size_of(&Type::struct_("account")).unwrap();
        let p = rt.type_malloc(size, &Type::struct_("account"), AllocKind::Heap);
        // A pointer to number[0] with static type int[]:
        let b = rt.type_check(p, &Type::int(), &loc("account"));
        assert_eq!(b.width(), 32); // int[8], not the whole struct
                                   // number[8] === balance: inside the allocation, outside the
                                   // sub-object bounds.
        let overflow = p.add(32);
        assert!(!rt.bounds_check(overflow, 4, b, &loc("account"), false));
        let stats = rt.reporter().stats();
        assert_eq!(stats.issues_of(ErrorKind::SubObjectBoundsOverflow), 1);
        assert_eq!(stats.issues_of(ErrorKind::ObjectBoundsOverflow), 0);
    }

    #[test]
    fn object_overflow_is_classified_differently() {
        let mut rt = runtime();
        let p = rt.type_malloc(4 * 4, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("arr"));
        // Element 100 is far outside the 4-element allocation.
        let wild = p.add(400);
        assert!(!rt.bounds_check(wild, 4, b, &loc("arr"), false));
        assert_eq!(
            rt.reporter()
                .stats()
                .issues_of(ErrorKind::ObjectBoundsOverflow),
            1
        );
    }

    #[test]
    fn use_after_free_and_double_free() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert!(rt.type_free(p, &loc("free1")));
        // Use after free: the dynamic type is now FREE.
        let b = rt.type_check(p, &Type::struct_("S"), &loc("uaf"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
        // Double free.
        assert!(!rt.type_free(p, &loc("free2")));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::DoubleFree), 1);
    }

    #[test]
    fn reuse_after_free_with_different_type_is_detected() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        // The allocator reuses the block for a float array.
        let q = rt.type_malloc(24, &Type::float(), AllocKind::Heap);
        assert_eq!(
            p, q,
            "block should be reused for this test to be meaningful"
        );
        // The dangling pointer is now typed float[], not S: error.
        let b = rt.type_check(p, &Type::struct_("S"), &loc("reuse"));
        assert!(b.is_wide());
        assert!(rt.reporter().stats().type_issues() >= 1);
        // Whereas the new owner's accesses are fine.
        let ok = rt.type_check(q, &Type::float(), &loc("owner"));
        assert!(!ok.is_wide());
    }

    #[test]
    fn reuse_after_free_with_same_type_is_missed() {
        // Documented limitation (§2.2/§3): reuse with the *same* type is not
        // detectable by type checking alone.
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        let q = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert_eq!(p, q);
        let b = rt.type_check(p, &Type::struct_("S"), &loc("reuse-same"));
        assert!(!b.is_wide());
        assert_eq!(rt.reporter().stats().temporal_issues(), 0);
    }

    #[test]
    fn quarantine_prevents_same_type_reuse() {
        let mut rt = TypeCheckRuntime::new(
            registry(),
            RuntimeConfig {
                allocator: AllocatorConfig {
                    quarantine_blocks: 4,
                },
                ..Default::default()
            },
        );
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p, &loc("free"));
        let q = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert_ne!(p, q, "quarantine must delay reuse");
        // The dangling pointer still sees FREE: use-after-free detected.
        rt.type_check(p, &Type::struct_("S"), &loc("uaf"));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
    }

    #[test]
    fn legacy_pointers_get_wide_bounds() {
        let mut rt = runtime();
        let p = rt.type_malloc(100, &Type::int(), AllocKind::Legacy);
        let b = rt.type_check(p, &Type::float(), &loc("legacy"));
        assert!(b.is_wide());
        assert_eq!(rt.stats().legacy_type_checks, 1);
        assert_eq!(rt.stats().failed_type_checks, 0);
        assert!(rt.bounds_check(p.add(1000), 8, b, &loc("legacy"), false));
        // Null pointers are legacy too.
        let b = rt.type_check(Ptr::NULL, &Type::int(), &loc("null"));
        assert!(b.is_wide());
    }

    #[test]
    fn char_access_resets_bounds_to_containing_object() {
        // §6.1 (xalancbmk): a cast to char* resets the bounds to the
        // containing object rather than reporting a sub-object overflow.
        let mut rt = runtime();
        let size = rt.registry().size_of(&Type::struct_("T")).unwrap();
        let p = rt.type_malloc(size, &Type::struct_("T"), AllocKind::Heap);
        let b = rt.type_check(p.add(5), &Type::char_(), &loc("memcpyish"));
        assert_eq!(b, Bounds::from_base_size(p, size));
        assert_eq!(rt.stats().failed_type_checks, 0);
    }

    #[test]
    fn bounds_get_ignores_types() {
        let mut rt = runtime();
        let p = rt.type_malloc(64, &Type::struct_("S"), AllocKind::Heap);
        let b = rt.bounds_get(p.add(8));
        assert_eq!(b, Bounds::from_base_size(p, 64));
        assert_eq!(rt.stats().bounds_gets, 1);
        assert_eq!(rt.stats().failed_type_checks, 0);
        // Legacy pointer: wide.
        let q = rt.type_malloc(64, &Type::int(), AllocKind::Legacy);
        assert!(rt.bounds_get(q).is_wide());
    }

    #[test]
    fn cast_check_reports_bad_cast() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        let b = rt.cast_check(p, &Type::struct_("account"), &loc("cast"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::BadCast), 1);
        assert_eq!(rt.stats().cast_checks, 1);
    }

    #[test]
    fn realloc_copies_and_frees() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        rt.memory.write_u32(p, 0x11223344);
        rt.memory.write_u32(p.add(12), 0x55667788);
        let q = rt.type_realloc(p, 64, &Type::int(), AllocKind::Heap, &loc("realloc"));
        assert_ne!(p, q);
        assert_eq!(rt.memory.read_u32(q), 0x11223344);
        assert_eq!(rt.memory.read_u32(q.add(12)), 0x55667788);
        // The old object is now FREE.
        rt.type_check(p, &Type::int(), &loc("stale"));
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
    }

    #[test]
    fn pointer_underflow_into_meta_header_is_an_error() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        let before = p.offset(-4);
        let b = rt.type_check(before, &Type::int(), &loc("underflow"));
        assert!(b.is_wide());
        assert_eq!(rt.stats().failed_type_checks, 1);
    }

    #[test]
    fn escape_bounds_failures_are_classified() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("esc"));
        assert!(!rt.bounds_check(p.add(64), 8, b, &loc("esc"), true));
        assert_eq!(
            rt.reporter()
                .stats()
                .issues_of(ErrorKind::EscapeBoundsOverflow),
            1
        );
    }

    #[test]
    fn stats_count_all_check_kinds() {
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        let b = rt.type_check(p, &Type::int(), &loc("s"));
        rt.bounds_check(p, 4, b, &loc("s"), false);
        rt.bounds_narrow(b, Bounds::new(b.lo, b.lo + 4));
        rt.bounds_get(p);
        rt.cast_check(p, &Type::int(), &loc("s"));
        let stats = rt.stats();
        assert_eq!(stats.type_checks, 1);
        assert_eq!(stats.bounds_checks, 1);
        assert_eq!(stats.bounds_narrows, 1);
        assert_eq!(stats.bounds_gets, 1);
        assert_eq!(stats.cast_checks, 1);
        assert_eq!(stats.typed_allocations, 1);
        assert_eq!(stats.total_checks(), 4);
    }

    #[test]
    fn check_cache_hits_on_repeated_site_checks() {
        // The dominant workload pattern: a loop re-checking the same
        // (allocation type, static type, offset) triple.
        let mut rt = runtime();
        let p = rt.type_malloc(100 * 4, &Type::int(), AllocKind::Heap);
        let expected = Bounds::from_base_size(p, 400);
        for i in 0..50 {
            let b = rt.type_check(p, &Type::int(), &loc("loop"));
            assert_eq!(b, expected, "iteration {i}");
        }
        let stats = rt.stats();
        assert_eq!(stats.check_cache_misses, 1);
        assert_eq!(stats.check_cache_hits, 49);
        // Clearing the cache forces a fresh walk with the same outcome.
        rt.invalidate_check_cache();
        let b = rt.type_check(p, &Type::int(), &loc("loop"));
        assert_eq!(b, expected);
        assert_eq!(rt.stats().check_cache_misses, 2);
    }

    #[test]
    fn check_cache_failures_are_never_cached() {
        let mut rt = runtime();
        let p = rt.type_malloc(4 * 4, &Type::int(), AllocKind::Heap);
        for _ in 0..5 {
            assert!(rt.type_check(p, &Type::float(), &loc("bad")).is_wide());
        }
        let stats = rt.stats();
        // Every failing check misses the cache and reaches the reporter.
        assert_eq!(stats.check_cache_hits, 0);
        assert_eq!(stats.check_cache_misses, 5);
        assert_eq!(stats.failed_type_checks, 5);
        assert_eq!(rt.reporter().stats().total_events, 5);
    }

    #[test]
    fn check_cache_never_masks_use_after_free() {
        // A hot, cached check site must still detect the free: the FREE
        // binding is consulted before the cache.
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        for _ in 0..10 {
            assert!(!rt.type_check(p, &Type::struct_("S"), &loc("hot")).is_wide());
        }
        assert_eq!(rt.stats().check_cache_hits, 9);
        rt.type_free(p, &loc("free"));
        let b = rt.type_check(p, &Type::struct_("S"), &loc("stale"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
        // The UAF path bypassed the cache entirely: counters unchanged.
        assert_eq!(rt.stats().check_cache_hits, 9);
        assert_eq!(rt.stats().check_cache_misses, 1);
    }

    #[test]
    fn check_cache_respects_quarantine_reuse_with_new_type() {
        // Free + reallocate the same block under a different type: the
        // META id rebind re-keys the cache, so the stale entry for the old
        // binding can never be hit.
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        for _ in 0..4 {
            rt.type_check(p, &Type::struct_("S"), &loc("warm"));
        }
        rt.type_free(p, &loc("free"));
        let q = rt.type_malloc(24, &Type::float(), AllocKind::Heap);
        assert_eq!(p, q, "block must be reused for this test to bite");
        // The dangling pointer's checks now key on the float binding and
        // fail — the warm `struct S` cache entry is unreachable.
        let b = rt.type_check(p, &Type::struct_("S"), &loc("dangling"));
        assert!(b.is_wide());
        assert!(rt.reporter().stats().type_issues() >= 1);
        // The new owner's checks populate and then hit their own entry.
        let before = rt.stats().check_cache_hits;
        rt.type_check(q, &Type::float(), &loc("owner"));
        rt.type_check(q, &Type::float(), &loc("owner"));
        assert_eq!(rt.stats().check_cache_hits, before + 1);
    }

    #[test]
    fn check_cache_realloc_rebinds_before_reuse() {
        // type_realloc frees the old block (FREE rebind); checks through
        // the stale pointer after a warm cache still report.
        let mut rt = runtime();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        for _ in 0..3 {
            rt.type_check(p, &Type::int(), &loc("warm"));
        }
        let q = rt.type_realloc(p, 64, &Type::int(), AllocKind::Heap, &loc("realloc"));
        assert_ne!(p, q);
        let b = rt.type_check(p, &Type::int(), &loc("stale"));
        assert!(b.is_wide());
        assert_eq!(rt.reporter().stats().issues_of(ErrorKind::UseAfterFree), 1);
    }

    #[test]
    fn cast_checks_share_the_site_cache() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_check(p, &Type::struct_("S"), &loc("a"));
        // Same (alloc, static, offset) triple through the cast-site entry
        // point: a hit, because successes are failure-kind independent.
        rt.cast_check(p, &Type::struct_("S"), &loc("b"));
        let stats = rt.stats();
        assert_eq!(stats.check_cache_misses, 1);
        assert_eq!(stats.check_cache_hits, 1);
        assert_eq!(stats.cast_checks, 1);
        assert_eq!(stats.type_checks, 1);
    }

    #[test]
    fn preload_types_builds_layouts_upfront_without_stat_noise() {
        let mut rt = runtime();
        rt.preload_types(&[Type::struct_("S"), Type::struct_("T"), Type::int()], &[]);
        let entries = rt.layout_table_entries();
        assert!(entries > 0);
        assert_eq!(rt.stats(), CheckStats::default());
        // Re-registering is idempotent.
        rt.preload_types(&[Type::struct_("S")], &[]);
        assert_eq!(rt.layout_table_entries(), entries);
        // Check static types are interned as keys only: no table is built
        // for them, so the metadata footprint does not grow (the lazy path
        // would never build one either).
        rt.preload_types(&[], &[Type::double(), Type::ptr(Type::double())]);
        assert_eq!(rt.layout_table_entries(), entries);
        assert!(rt.interner().get(&Type::double()).is_some());
        // Checks behave identically on preloaded types.
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        assert!(!rt.type_check(p, &Type::struct_("S"), &loc("pre")).is_wide());
    }

    #[test]
    fn garbage_meta_ids_are_legacy_even_when_interned() {
        let mut rt = runtime();
        // A check-only static type: interned (it has an id) but never
        // registered as an allocation type (no layout slot).
        rt.preload_types(&[], &[Type::double()]);
        let key_id = rt.interner().get(&Type::double()).unwrap();
        let p = rt.type_malloc(16, &Type::int(), AllocKind::Heap);
        let base = rt.allocator.base(p).unwrap();
        // A buggy program scribbles the key-only id into the META header:
        // it must classify as legacy (garbage META), not as a typed
        // allocation — and that classification must not depend on how many
        // types happen to have been interned by the time of the check.
        rt.memory.write_u64(base, key_id.raw() as u64);
        assert!(rt.type_check(p, &Type::int(), &loc("garbage")).is_wide());
        assert_eq!(rt.stats().legacy_type_checks, 1);
        assert_eq!(rt.stats().failed_type_checks, 0);
        assert!(rt.dynamic_type_of(p).is_none());
        assert!(rt.allocation_bounds(p).is_none());
        // The well-known CHAR/VOID_PTR ids are pre-interned but likewise
        // untrusted until a char / void* allocation actually registers
        // them — garbage must not read back as a typed char buffer.
        rt.memory.write_u64(base, TypeId::CHAR.raw() as u64);
        assert!(rt
            .type_check(p, &Type::int(), &loc("garbage-char"))
            .is_wide());
        assert_eq!(rt.stats().legacy_type_checks, 2);
        assert!(rt.dynamic_type_of(p).is_none());
        // A real char allocation registers CHAR and is typed as usual.
        let c = rt.type_malloc(8, &Type::char_(), AllocKind::Heap);
        assert_eq!(rt.dynamic_type_of(c), Some(&Type::char_()));
    }

    #[test]
    fn free_of_interior_pointer_is_reported() {
        let mut rt = runtime();
        let p = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Heap);
        rt.type_free(p.add(4), &loc("interior-free"));
        assert!(rt.reporter().stats().type_issues() >= 1);
    }

    #[test]
    fn stack_and_global_allocations_are_typed() {
        let mut rt = runtime();
        let frame = rt.allocator.stack_frame_begin();
        let s = rt.type_malloc(24, &Type::struct_("S"), AllocKind::Stack);
        let g = rt.type_malloc(8 * 24, &Type::struct_("S"), AllocKind::Global);
        assert!(!rt
            .type_check(s, &Type::struct_("S"), &loc("stack"))
            .is_wide());
        assert!(!rt
            .type_check(g.add(24), &Type::struct_("S"), &loc("global"))
            .is_wide());
        assert_eq!(rt.stats().failed_type_checks, 0);
        rt.allocator.stack_frame_end(frame);
    }
}
