//! Error classification, bucketing and reporting.
//!
//! EffectiveSan "logs all errors without stopping the program" by default,
//! can be configured "to merely count errors", and/or "to abort after N
//! errors" (§6).  Issues are bucketed "by type and offset to prevent the
//! same issue from being reported at multiple different program points"
//! (§6.1).  This module implements all three modes plus the error-class
//! taxonomy used throughout the evaluation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::bounds::Bounds;

/// The class of a detected issue.
///
/// The classes correspond to the columns of Figure 1 and the issue
/// categories discussed in §6.1/§6.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorKind {
    /// A pointer is used at a type incompatible with the object's dynamic
    /// type (includes implicit casts, container casts, `T*` vs `T**`
    /// confusion, incompatible struct definitions, …).
    TypeConfusion,
    /// An explicit bad cast (C++ downcast or C-style cast) detected by the
    /// cast-site instrumentation of the EffectiveSan-type variant or by a
    /// baseline cast checker.
    BadCast,
    /// Access to an object whose dynamic type is `FREE` (use-after-free).
    UseAfterFree,
    /// `free`/`delete` of an object already bound to `FREE`.
    DoubleFree,
    /// Access outside a sub-object's bounds but still inside the containing
    /// allocation (e.g. overflowing `account.number` into
    /// `account.balance`).
    SubObjectBoundsOverflow,
    /// Access outside the allocation bounds entirely.
    ObjectBoundsOverflow,
    /// A bounds violation detected when a pointer escapes (is stored or
    /// passed) rather than when it is dereferenced.
    EscapeBoundsOverflow,
}

impl ErrorKind {
    /// Short stable name used in reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::TypeConfusion => "type-confusion",
            ErrorKind::BadCast => "bad-cast",
            ErrorKind::UseAfterFree => "use-after-free",
            ErrorKind::DoubleFree => "double-free",
            ErrorKind::SubObjectBoundsOverflow => "subobject-bounds-overflow",
            ErrorKind::ObjectBoundsOverflow => "object-bounds-overflow",
            ErrorKind::EscapeBoundsOverflow => "escape-bounds-overflow",
        }
    }

    /// Is this a type error (the "Types" column of Figure 1)?
    pub fn is_type_error(self) -> bool {
        matches!(self, ErrorKind::TypeConfusion | ErrorKind::BadCast)
    }

    /// Is this a bounds error (the "Bounds" column of Figure 1)?
    pub fn is_bounds_error(self) -> bool {
        matches!(
            self,
            ErrorKind::SubObjectBoundsOverflow
                | ErrorKind::ObjectBoundsOverflow
                | ErrorKind::EscapeBoundsOverflow
        )
    }

    /// Is this a temporal error (the "UAF" column of Figure 1)?
    pub fn is_temporal_error(self) -> bool {
        matches!(self, ErrorKind::UseAfterFree | ErrorKind::DoubleFree)
    }

    /// All error kinds, for iteration in reports.
    pub fn all() -> [ErrorKind; 7] {
        [
            ErrorKind::TypeConfusion,
            ErrorKind::BadCast,
            ErrorKind::UseAfterFree,
            ErrorKind::DoubleFree,
            ErrorKind::SubObjectBoundsOverflow,
            ErrorKind::ObjectBoundsOverflow,
            ErrorKind::EscapeBoundsOverflow,
        ]
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a string does not name an [`ErrorKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseErrorKindError {
    /// The string that failed to parse.
    pub name: String,
}

impl fmt::Display for ParseErrorKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown error kind `{}` (known: {})",
            self.name,
            ErrorKind::all().map(|k| k.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseErrorKindError {}

impl std::str::FromStr for ErrorKind {
    type Err = ParseErrorKindError;

    /// Parse the stable [`ErrorKind::name`] spelling back into the kind
    /// (exact match; `name().parse()` round-trips).  Used by the sweep
    /// wire format to decode diagnostics sent between processes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ErrorKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseErrorKindError {
                name: s.to_string(),
            })
    }
}

/// A single logged issue.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorRecord {
    /// The issue class.
    pub kind: ErrorKind,
    /// The static type the program used at the access/cast site (rendered).
    pub static_type: String,
    /// The dynamic (allocation) type of the object involved (rendered).
    pub dynamic_type: String,
    /// Byte offset of the access within the allocation (normalised).
    pub offset: u64,
    /// The bounds the failing check compared against, when it had concrete
    /// (non-wide) bounds at hand.
    pub bounds: Option<Bounds>,
    /// Source location / instrumentation-site label.
    pub location: Arc<str>,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for ErrorRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: static type `{}` vs dynamic type `{}` at offset {} ({}) {}",
            self.kind, self.static_type, self.dynamic_type, self.offset, self.location, self.detail
        )
    }
}

/// Reporting mode (§6: logging for finding errors, counting for
/// performance measurement).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportMode {
    /// Keep a full record of every distinct issue bucket (plus counts).
    #[default]
    Log,
    /// Only count errors; do not retain records.
    Count,
}

/// Reporter configuration.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ReporterConfig {
    /// Logging or counting.
    pub mode: ReportMode,
    /// Stop the program after this many errors (`None`: never stop).
    pub abort_after: Option<u64>,
}

/// Aggregated error statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Total number of error events (before bucketing).
    pub total_events: u64,
    /// Number of distinct issue buckets (the `#Issues-found` column of
    /// Figure 7).
    pub distinct_issues: u64,
    /// Event counts per error kind.
    pub events_by_kind: HashMap<ErrorKind, u64>,
    /// Distinct-issue counts per error kind.
    pub issues_by_kind: HashMap<ErrorKind, u64>,
}

impl ErrorStats {
    /// Number of distinct issues of the given kind.
    pub fn issues_of(&self, kind: ErrorKind) -> u64 {
        self.issues_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Number of raw events of the given kind.
    pub fn events_of(&self, kind: ErrorKind) -> u64 {
        self.events_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Distinct type-error issues (Figure 1 "Types" column).
    pub fn type_issues(&self) -> u64 {
        ErrorKind::all()
            .iter()
            .filter(|k| k.is_type_error())
            .map(|k| self.issues_of(*k))
            .sum()
    }

    /// Distinct bounds-error issues (Figure 1 "Bounds" column).
    pub fn bounds_issues(&self) -> u64 {
        ErrorKind::all()
            .iter()
            .filter(|k| k.is_bounds_error())
            .map(|k| self.issues_of(*k))
            .sum()
    }

    /// Distinct temporal (UAF/double-free) issues (Figure 1 "UAF" column).
    pub fn temporal_issues(&self) -> u64 {
        ErrorKind::all()
            .iter()
            .filter(|k| k.is_temporal_error())
            .map(|k| self.issues_of(*k))
            .sum()
    }
}

/// The error reporter.
#[derive(Debug, Default)]
pub struct ErrorReporter {
    config: ReporterConfig,
    stats: ErrorStats,
    records: Vec<ErrorRecord>,
    buckets: HashMap<(ErrorKind, String, String, u64), u64>,
    halted: bool,
}

impl ErrorReporter {
    /// A reporter with the given configuration.
    pub fn new(config: ReporterConfig) -> Self {
        ErrorReporter {
            config,
            ..Default::default()
        }
    }

    /// Report an error event.  Returns `true` if this event opened a new
    /// issue bucket (i.e. it is a *distinct* issue).
    pub fn report(&mut self, record: ErrorRecord) -> bool {
        self.stats.total_events += 1;
        *self.stats.events_by_kind.entry(record.kind).or_insert(0) += 1;

        let key = (
            record.kind,
            record.static_type.clone(),
            record.dynamic_type.clone(),
            record.offset,
        );
        let bucket = self.buckets.entry(key).or_insert(0);
        let is_new = *bucket == 0;
        *bucket += 1;
        if is_new {
            self.stats.distinct_issues += 1;
            *self.stats.issues_by_kind.entry(record.kind).or_insert(0) += 1;
            if self.config.mode == ReportMode::Log {
                self.records.push(record);
            }
        }

        if let Some(limit) = self.config.abort_after {
            if self.stats.total_events >= limit {
                self.halted = true;
            }
        }
        is_new
    }

    /// Has the abort-after-N limit been reached?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> &ErrorStats {
        &self.stats
    }

    /// The distinct issue records (empty in counting mode).
    pub fn records(&self) -> &[ErrorRecord] {
        &self.records
    }

    /// The reporter configuration.
    pub fn config(&self) -> ReporterConfig {
        self.config
    }

    /// Reset all statistics and records (e.g. between benchmark runs).
    pub fn reset(&mut self) {
        let config = self.config;
        *self = ErrorReporter::new(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: ErrorKind, offset: u64) -> ErrorRecord {
        ErrorRecord {
            kind,
            static_type: "int".to_string(),
            dynamic_type: "struct S".to_string(),
            offset,
            bounds: None,
            location: Arc::from("test.c:1"),
            detail: String::new(),
        }
    }

    #[test]
    fn duplicate_events_share_a_bucket() {
        let mut r = ErrorReporter::default();
        assert!(r.report(record(ErrorKind::TypeConfusion, 8)));
        assert!(!r.report(record(ErrorKind::TypeConfusion, 8)));
        assert!(!r.report(record(ErrorKind::TypeConfusion, 8)));
        assert_eq!(r.stats().total_events, 3);
        assert_eq!(r.stats().distinct_issues, 1);
        assert_eq!(r.records().len(), 1);
    }

    #[test]
    fn different_offsets_or_kinds_are_distinct_issues() {
        let mut r = ErrorReporter::default();
        r.report(record(ErrorKind::TypeConfusion, 8));
        r.report(record(ErrorKind::TypeConfusion, 16));
        r.report(record(ErrorKind::SubObjectBoundsOverflow, 8));
        assert_eq!(r.stats().distinct_issues, 3);
        assert_eq!(r.stats().type_issues(), 2);
        assert_eq!(r.stats().bounds_issues(), 1);
        assert_eq!(r.stats().temporal_issues(), 0);
    }

    #[test]
    fn counting_mode_keeps_no_records() {
        let mut r = ErrorReporter::new(ReporterConfig {
            mode: ReportMode::Count,
            abort_after: None,
        });
        r.report(record(ErrorKind::UseAfterFree, 0));
        r.report(record(ErrorKind::DoubleFree, 0));
        assert!(r.records().is_empty());
        assert_eq!(r.stats().distinct_issues, 2);
        assert_eq!(r.stats().temporal_issues(), 2);
    }

    #[test]
    fn abort_after_limit_halts() {
        let mut r = ErrorReporter::new(ReporterConfig {
            mode: ReportMode::Log,
            abort_after: Some(2),
        });
        r.report(record(ErrorKind::TypeConfusion, 0));
        assert!(!r.halted());
        r.report(record(ErrorKind::TypeConfusion, 0));
        assert!(r.halted());
    }

    #[test]
    fn reset_clears_state_but_keeps_config() {
        let mut r = ErrorReporter::new(ReporterConfig {
            mode: ReportMode::Count,
            abort_after: Some(5),
        });
        r.report(record(ErrorKind::BadCast, 4));
        r.reset();
        assert_eq!(r.stats().total_events, 0);
        assert_eq!(r.config().abort_after, Some(5));
        assert_eq!(r.config().mode, ReportMode::Count);
    }

    #[test]
    fn kind_classification() {
        assert!(ErrorKind::TypeConfusion.is_type_error());
        assert!(ErrorKind::BadCast.is_type_error());
        assert!(ErrorKind::SubObjectBoundsOverflow.is_bounds_error());
        assert!(ErrorKind::ObjectBoundsOverflow.is_bounds_error());
        assert!(ErrorKind::EscapeBoundsOverflow.is_bounds_error());
        assert!(ErrorKind::UseAfterFree.is_temporal_error());
        assert!(ErrorKind::DoubleFree.is_temporal_error());
        assert!(!ErrorKind::UseAfterFree.is_type_error());
        assert_eq!(ErrorKind::all().len(), 7);
    }

    #[test]
    fn display_is_informative() {
        let rec = record(ErrorKind::TypeConfusion, 8);
        let s = rec.to_string();
        assert!(s.contains("type-confusion"));
        assert!(s.contains("struct S"));
        assert!(s.contains("offset 8"));
    }
}
