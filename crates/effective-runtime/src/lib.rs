//! # effective-runtime
//!
//! The EffectiveSan runtime system (paper §5): typed allocation with `META`
//! object headers, the `type_check` / `bounds_check` / `bounds_narrow`
//! primitives invoked by the instrumentation, the special `FREE` type for
//! deallocated memory, and error reporting with the paper's logging /
//! counting / abort-after-N modes.
//!
//! The runtime sits on top of:
//!
//! * `effective-types` — the dynamic type model, layout function and layout
//!   hash table;
//! * `lowfat` — the simulated low-fat pointer allocator whose `base()`
//!   operation locates the `META` header from any interior pointer.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use effective_runtime::{RuntimeConfig, TypeCheckRuntime};
//! use effective_types::{FieldDef, RecordDef, Type, TypeRegistry};
//! use lowfat::AllocKind;
//!
//! let mut registry = TypeRegistry::new();
//! registry
//!     .define(RecordDef::struct_(
//!         "node",
//!         vec![
//!             FieldDef::new("value", Type::int()),
//!             FieldDef::new("next", Type::ptr(Type::struct_("node"))),
//!         ],
//!     ))
//!     .unwrap();
//!
//! let mut rt = TypeCheckRuntime::new(Arc::new(registry), RuntimeConfig::default());
//! let loc: Arc<str> = Arc::from("example.c:3");
//!
//! // node *n = malloc(sizeof(node));  — the dynamic type node[1] is bound.
//! let n = rt.type_malloc(16, &Type::struct_("node"), AllocKind::Heap);
//!
//! // Using it as a node is fine; using it as a float array is a type error.
//! assert!(!rt.type_check(n, &Type::struct_("node"), &loc).is_wide());
//! rt.type_check(n, &Type::float(), &loc);
//! assert_eq!(rt.reporter().stats().type_issues(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod errors;
pub mod runtime;

pub use bounds::Bounds;
pub use errors::{
    ErrorKind, ErrorRecord, ErrorReporter, ErrorStats, ParseErrorKindError, ReportMode,
    ReporterConfig,
};
pub use runtime::{CheckStats, RuntimeConfig, TypeCheckRuntime, META_SIZE};
