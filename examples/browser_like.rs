//! Run the Firefox-like browser workload (paper §6.3, Figure 10): seven
//! browser-benchmark drivers executed concurrently, uninstrumented versus
//! EffectiveSan (full).
//!
//! Run with: `cargo run --release --example browser_like`

use effective_san::{firefox_experiment, Scale};

fn main() {
    println!("running the Firefox-like workload (7 browser benchmarks, parallel)…\n");
    let experiment = firefox_experiment(Scale::Small, true);

    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "benchmark", "base cost", "EffectiveSan", "overhead"
    );
    println!("{}", "-".repeat(60));
    for (name, base, full) in &experiment.benchmarks {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>11.0}%",
            name,
            base.cost,
            full.cost,
            full.overhead_pct(base)
        );
    }
    println!("{}", "-".repeat(60));
    println!(
        "mean overhead {:.0}%   (paper reports {:.0}% overall for Firefox)",
        experiment.mean_overhead_pct(),
        experiment.paper_overall_overhead_pct
    );
    println!(
        "issues found in the browser workload: {} (template-parameter casts, CMA typing, …)",
        experiment.total_issues()
    );
}
