//! Run every seeded bug from the workloads catalogue under EffectiveSan and
//! a selection of baseline sanitizers, and show who detects what.
//!
//! This reproduces, on runnable probes, the comparison the paper makes in
//! Figure 1 and §6.1: EffectiveSan's single mechanism (dynamic type
//! checking) covers type confusion, (sub-)object bounds errors and many
//! temporal errors, while each specialised tool only covers its own niche.
//!
//! Run with: `cargo run --example bug_hunt`

use effective_san::{run_source, RunConfig, SanitizerKind};

fn main() {
    let tools = [
        SanitizerKind::EffectiveFull,
        SanitizerKind::AddressSanitizer,
        SanitizerKind::TypeSan,
        SanitizerKind::Cets,
    ];

    println!("{:<28} {:<28} detected by", "seeded bug", "paper finding");
    println!("{}", "-".repeat(100));

    for bug in effective_san::workloads::catalogue() {
        let source = format!(
            "{}\nint probe_main(int n) {{ {}(); return n; }}\n",
            bug.decls, bug.entry
        );
        let mut detectors = Vec::new();
        for &tool in &tools {
            let report = run_source(&source, "probe_main", &[1], &RunConfig::for_sanitizer(tool))
                .expect("probe compiles");
            if report.errors.distinct_issues > 0 {
                detectors.push(tool.name());
            }
        }
        let models: String = bug.models.chars().take(28).collect();
        println!(
            "{:<28} {:<28} {}",
            bug.id,
            models,
            if detectors.is_empty() {
                "(none)".to_string()
            } else {
                detectors.join(", ")
            }
        );
    }

    println!(
        "\nEvery probe is detected by EffectiveSan; the baselines only catch the classes\n\
         they were designed for (AddressSanitizer: red-zone overflows and quarantined\n\
         use-after-free; TypeSan: bad class downcasts; CETS: temporal errors)."
    );
}
