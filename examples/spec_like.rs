//! Run a subset of the synthetic SPEC2006-like workloads under the three
//! EffectiveSan variants and print a miniature Figure 7 / Figure 8.
//!
//! Run with: `cargo run --release --example spec_like`

use effective_san::{spec_experiment, Parallelism, SanitizerKind, Scale};

fn main() {
    let names = ["perlbench", "gcc", "h264ref", "xalancbmk", "soplex", "lbm"];
    let sanitizers = [
        SanitizerKind::None,
        SanitizerKind::EffectiveFull,
        SanitizerKind::EffectiveBounds,
        SanitizerKind::EffectiveType,
    ];
    println!(
        "running {} synthetic SPEC-like workloads (scale: small)…\n",
        names.len()
    );
    let experiment = spec_experiment(
        Some(&names),
        Scale::Small,
        &sanitizers,
        Parallelism::Parallel,
    );

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "benchmark", "paper", "#type", "#bounds", "issues", "full%", "bounds%", "type%"
    );
    println!("{:<12} {:>8}", "", "issues");
    println!("{}", "-".repeat(90));
    for row in &experiment.rows {
        let full = row.report(SanitizerKind::EffectiveFull).unwrap();
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>8} {:>9.0}% {:>9.0}% {:>9.0}%",
            row.name,
            row.paper_issues,
            full.checks.type_checks,
            full.checks.bounds_checks,
            full.errors.distinct_issues,
            row.overhead_pct(SanitizerKind::EffectiveFull)
                .unwrap_or(0.0),
            row.overhead_pct(SanitizerKind::EffectiveBounds)
                .unwrap_or(0.0),
            row.overhead_pct(SanitizerKind::EffectiveType)
                .unwrap_or(0.0),
        );
    }
    println!("{}", "-".repeat(90));
    println!(
        "geometric-mean overhead:  full {:.0}%   bounds {:.0}%   type {:.0}%   (paper: 288% / 115% / 49%)",
        experiment.mean_overhead_pct(SanitizerKind::EffectiveFull),
        experiment.mean_overhead_pct(SanitizerKind::EffectiveBounds),
        experiment.mean_overhead_pct(SanitizerKind::EffectiveType),
    );
    println!(
        "memory overhead (full): {:.0}%   (paper: ~12%)",
        experiment.mean_memory_overhead_pct(SanitizerKind::EffectiveFull)
    );
}
