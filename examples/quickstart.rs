//! Quick start: detect a sub-object overflow that AddressSanitizer misses.
//!
//! This is the paper's introductory `account` example: an overflow of the
//! `number` array silently corrupts the adjacent `balance` field unless
//! sub-object bounds are enforced.
//!
//! Run with: `cargo run --example quickstart`

use effective_san::{run_source, RunConfig, SanitizerKind};

const PROGRAM: &str = r#"
struct account { int number[8]; float balance; };

int deposit(struct account *a, int slot, int amount) {
    // BUG: `slot` is not validated; slot == 8 lands on `balance`.
    a->number[slot] = amount;
    return a->number[slot];
}

int run(int slot) {
    struct account *a = (struct account *)malloc(sizeof(struct account));
    a->balance = 1000.0;
    int v = deposit(a, slot, 77);
    free(a);
    return v;
}
"#;

fn main() {
    println!("== EffectiveSan quickstart: the `account` sub-object overflow ==\n");

    for (label, slot) in [("in-bounds write (slot 3)", 3i64), ("overflow (slot 8)", 8)] {
        println!("--- {label} ---");
        for sanitizer in [
            SanitizerKind::None,
            SanitizerKind::AddressSanitizer,
            SanitizerKind::EffectiveFull,
        ] {
            let report = run_source(
                PROGRAM,
                "run",
                &[slot],
                &RunConfig::for_sanitizer(sanitizer),
            )
            .expect("program compiles");
            println!(
                "{:<22} result={:?}  checks={:<6}  issues: type={} bounds={} uaf={}",
                sanitizer.name(),
                report.result,
                report.total_checks(),
                report.errors.type_issues(),
                report.errors.bounds_issues(),
                report.errors.temporal_issues(),
            );
        }
        println!();
    }

    println!(
        "EffectiveSan narrows the pointer's bounds to the `number` sub-object using the\n\
         object's dynamic type, so the slot-8 write is flagged; AddressSanitizer only\n\
         guards allocation red-zones and stays silent because the write never leaves\n\
         the allocation."
    );
}
